"""End-to-end tests of the compilation service: HTTP server + client SDK.

One in-process server (``serve_background``) backed by a real artifact
store serves the whole module; the tests drive it exclusively through
:class:`repro.service.client.ServiceClient` — the same path ``repro
submit`` and CI use — so the JSON wire format is pinned too.

The load-bearing property is the last class: results served over HTTP
must match the differential oracle (golden interpretation of the
unoptimized kernel) *exactly* — same scalars, same output-array bytes —
for kernels from the CI oracle set.  A cache layer that returned almost-
right numbers would be worse than none.
"""

import hashlib

import numpy as np
import pytest

from repro.check.refeval import reference_run
from repro.experiments.sweep import run_config
from repro.machine import MachineConfig
from repro.pipeline import Level
from repro.service.client import (
    ServiceClient,
    ServiceOverloaded,
    ServiceRequestError,
)
from repro.service.server import serve_background
from repro.workloads import get_workload

#: fast members of the differential-oracle CI subset (see ablation.py)
ORACLE_KERNELS = ("add", "sum", "dotprod")


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    httpd, engine, url = serve_background(
        store_dir=tmp_path_factory.mktemp("store"),
        jobs=1,
        max_pending=8,
        default_timeout=120.0,
    )
    yield ServiceClient(url, timeout=120.0), engine
    httpd.shutdown()
    engine.close()


class TestEndpoints:
    def test_healthz(self, service):
        client, _ = service
        h = client.healthz()
        assert h["ok"] is True
        assert h["queue_depth"] >= 0

    def test_run_then_duplicate_is_store_hit(self, service):
        client, _ = service
        first = client.run("add", level=2, width=4)
        assert first["cache"] == "miss"
        r = first["result"]
        assert r["cycles"] > 0 and r["checked"] is True
        assert r["workload"] == "add" and r["level"] == 2 and r["width"] == 4
        again = client.run("add", level=2, width=4)
        assert again["cache"] == "hit"
        assert again["result"] == r  # byte-identical payload round-trip

    def test_compile_returns_scheduled_ir(self, service):
        client, _ = service
        r = client.compile("dotprod", level=4, width=8)["result"]
        assert r["kind"] == "compile"
        assert "MEM(" in r["ir"]  # scheduled inner-loop body, pretty-printed
        assert "cycles" not in r  # compile does not simulate
        assert r["unroll_factor"] >= 1

    def test_sweep_job_lifecycle(self, service):
        client, engine = service
        jid = client.sweep(["add"], levels=[0, 2], widths=[1, 8])
        rec = client.wait_job(jid, timeout=120.0)
        res = rec["result"]
        assert res["configs"] == 4 and len(res["results"]) == 4
        grid = [(r["workload"], r["level"], r["width"])
                for r in res["results"]]
        assert grid == sorted(grid)
        # level 0 at width 1 is the paper's baseline: slowest of the four
        cycles = {(r["level"], r["width"]): r["cycles"]
                  for r in res["results"]}
        assert cycles[(0, 1)] == max(cycles.values())
        assert engine.job(jid) is not None

    def test_batched_widths_share_one_compilation(self, service):
        """Two widths of one (workload, level) submitted back-to-back land
        in the same cell: one compilation, both results correct."""
        client, engine = service
        cells0 = engine.counters["batched_cells"]
        jid = client.sweep(["maxval"], levels=[4], widths=[1, 8])
        res = client.wait_job(jid, timeout=120.0)["result"]
        assert len(res["results"]) == 2
        assert engine.counters["batched_cells"] - cells0 == 1
        w1, w8 = res["results"]
        assert w1["cycles"] > w8["cycles"]  # wider issue must not be slower

    def test_unknown_workload_is_400(self, service):
        client, _ = service
        with pytest.raises(ServiceRequestError) as ei:
            client.run("no-such-kernel")
        assert ei.value.status == 400

    def test_bad_width_is_400(self, service):
        client, _ = service
        with pytest.raises(ServiceRequestError) as ei:
            client.run("add", width=3)
        assert ei.value.status == 400

    def test_unknown_job_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceRequestError) as ei:
            client.job("job-999999")
        assert ei.value.status == 404

    def test_unknown_route_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceRequestError) as ei:
            client._call("GET", "/v2/nope")
        assert ei.value.status == 404

    def test_oversized_sweep_is_shed_as_429(self, service):
        client, _ = service
        # 2 workloads x 5 levels x 4 widths = 40 configs > max_pending=8;
        # admission is atomic, so the whole sweep is shed up front
        with pytest.raises(ServiceOverloaded) as ei:
            client.sweep(["add", "sum"])
        assert ei.value.status == 429
        # shedding must not wedge the service
        assert client.healthz()["ok"] is True
        assert client.run("add", level=0, width=1)["result"]["cycles"] > 0

    def test_metrics_expose_the_service_counters(self, service):
        client, _ = service
        m = client.metrics()
        for field in ("requests", "hits", "misses", "shed", "batched_cells",
                      "queue_depth", "latency_p50_s", "latency_p95_s"):
            assert field in m
        assert m["hits"] >= 1          # the duplicate-run test above
        assert m["shed"] >= 1          # the oversized sweep above
        assert m["store"]["entries"] >= 1
        assert m["store"]["bytes"] > 0


class TestServedResultsMatchOracle:
    """Acceptance: served ``/v1/run`` results for the oracle kernels match
    the differential oracle (golden interpretation of the *unoptimized*
    kernel on the same inputs) exactly — scalar-for-scalar and
    byte-for-byte on every output array."""

    @pytest.mark.parametrize("name", ORACLE_KERNELS)
    def test_served_run_matches_golden_reference(self, service, name):
        client, _ = service
        served = client.run(name, level=4, width=8)["result"]

        w = get_workload(name)
        arrays, scalars = w.make_inputs(seed=0)
        ref_arrays, ref_scalars, _ = reference_run(w.build(), arrays, scalars)
        ref_digests = {
            k: hashlib.sha256(np.ascontiguousarray(v).tobytes()).hexdigest()
            for k, v in sorted(ref_arrays.items())
        }
        assert served["array_digests"] == ref_digests
        assert set(served["scalars"]) == set(ref_scalars)
        for k, ref in ref_scalars.items():
            assert served["scalars"][k] == ref  # exact, not approximate

    @pytest.mark.parametrize("name", ORACLE_KERNELS)
    def test_served_cycles_match_local_compilation(self, service, name):
        """The service is a cache, not a different compiler: cycle counts
        served over HTTP equal a local in-process compilation's."""
        client, _ = service
        served = client.run(name, level=4, width=8)["result"]
        local = run_config(w=get_workload(name), level=Level.LEV4,
                           machine=MachineConfig(issue_width=8))
        assert served["cycles"] == local.cycles
        assert served["instructions"] == local.instructions
        assert served["inner_makespan"] == local.inner_makespan
        assert (served["int_regs"], served["fp_regs"]) == (
            local.int_regs, local.fp_regs)
