"""Cycle-exact reproduction of the paper's worked examples.

Every numbered figure with an assembly listing and a cycle count is
reproduced here through the real pipeline:

* Figure 1 — loop unrolling + register renaming: 7 -> 19/3 -> 8/3
* Figure 3 — accumulator variable expansion:     8 -> 14/3 -> 10/3 (acc
  only) -> 8/3 (with induction expansion, the paper's "2.7 cycles")
* Figure 5 — induction variable expansion:       6 -> 8/3 -> 6/3
* Figure 6 — operation combining:                7 -> 5
* Figure 7 — tree height reduction:              22 -> 13

The per-body cycle numbers the paper quotes are schedule makespans of one
(unrolled) loop body on the infinite-resource machine its examples assume.
Functional correctness is checked by executing each compiled loop against
a NumPy reference.
"""

import numpy as np
import pytest

from repro.analysis.loopvars import CountedLoop
from repro.ir import Function, parse_block, parse_function, parse_instr
from repro.ir.loop import find_loops
from repro.ir.operands import Reg, RegClass
from repro.ir.verify import verify_function
from repro.machine import unlimited
from repro.pipeline import Level, apply_ilp_transforms, schedule_function
from repro.schedule.listsched import list_schedule
from repro.schedule.superblock import form_superblock
from repro.sim import Memory, simulate
from repro.transforms.accumulate import expand_accumulators
from repro.transforms.combine import combine_operations
from repro.transforms.rename import rename_superblock
from repro.transforms.treeheight import reduce_tree_height
from repro.transforms.unroll import unroll_counted


def schedule_text(text: str) -> "Schedule":
    body = parse_block(text).instrs
    return list_schedule(body, unlimited())


class TestFigure1:
    """Loop unrolling and register renaming on C(j) = A(j) + B(j)."""

    ORIGINAL = """
      r2f = MEM(A+r1i)
      r3f = MEM(B+r1i)
      r4f = r2f + r3f
      MEM(C+r1i) = r4f
      r1i = r1i + 4
      blt (r1i r5i) L1
    """

    def test_original_7_cycles(self):
        s = schedule_text(self.ORIGINAL)
        assert s.makespan == 7
        # exact issue times from Figure 1(b)
        assert [t for _, t in s.pairs()] == [0, 0, 2, 5, 5, 6]

    def test_unrolled_19_cycles(self):
        body = self.ORIGINAL.replace("blt (r1i r5i) L1", "").strip()
        text = body + "\n" + body + "\n" + body + "\nblt (r1i r5i) L1"
        s = schedule_text(text)
        assert s.makespan == 19

    def test_unrolled_renamed_8_cycles(self):
        s = schedule_text(
            """
            r21f = MEM(A+r11i)
            r31f = MEM(B+r11i)
            r41f = r21f + r31f
            MEM(C+r11i) = r41f
            r12i = r11i + 4
            r22f = MEM(A+r12i)
            r32f = MEM(B+r12i)
            r42f = r22f + r32f
            MEM(C+r12i) = r42f
            r13i = r12i + 4
            r23f = MEM(A+r13i)
            r33f = MEM(B+r13i)
            r43f = r23f + r33f
            MEM(C+r13i) = r43f
            r11i = r13i + 4
            blt (r11i r5i) L1
            """
        )
        assert s.makespan == 8

    def test_pipeline_matches_and_executes(self):
        """Through the real transform pipeline, with simulation checks."""
        for level, expected in [(Level.CONV, 7), (Level.LEV1, 19), (Level.LEV2, 8)]:
            f = parse_function(
                """
function fig1:
entry:
L1:
  r2f = MEM(A+r1i)
  r3f = MEM(B+r1i)
  r4f = r2f + r3f
  MEM(C+r1i) = r4f
  r1i = r1i + 4
  blt (r1i r5i) L1
exit:
  halt
"""
            )
            blk = f.get_block("L1")
            counted = CountedLoop(
                "L1", Reg(1, RegClass.INT), 4, Reg(5, RegClass.INT),
                blk.instrs[5], blk.instrs[4],
            )
            sb, _ = apply_ilp_transforms(f, counted, level, unlimited(), unroll_factor=3)
            scheds = schedule_function(f, unlimited(), sb=sb, doall=True)
            assert scheds[sb.header].makespan == expected, level

            n = 30
            mem = Memory()
            A = np.arange(1.0, n + 1)
            B = np.arange(2.0, n + 2)
            mem.bind_array("A", A)
            mem.bind_array("B", B)
            mem.bind_array("C", np.zeros(n))
            simulate(f, unlimited(), mem, iregs={1: 0, 5: 4 * n})
            assert np.array_equal(mem.read_array("C", (n,)), A + B)


FIG3_SRC = """
function fig3:
entry:
  r1f = MEM(C+r2i)
L1:
  r3f = MEM(A+r4i)
  r5f = MEM(B+r6i)
  r7f = r3f * r5f
  r1f = r1f + r7f
  r4i = r4i + 4
  r6i = r6i + r8i
  blt (r4i r9i) L1
exit:
  MEM(C+r2i) = r1f
  halt
"""


def build_fig3():
    f = parse_function(FIG3_SRC)
    blk = f.get_block("L1")
    counted = CountedLoop(
        "L1", Reg(4, RegClass.INT), 4, Reg(9, RegClass.INT),
        blk.instrs[6], blk.instrs[4],
    )
    return f, counted


def run_fig3(f, n=30):
    mem = Memory()
    A = np.arange(1.0, n + 1)
    B = np.arange(2.0, n + 2)
    mem.bind_array("A", A)
    mem.bind_array("B", B)
    mem.bind_array("C", np.zeros(4))
    res = simulate(f, unlimited(), mem, iregs={2: 0, 4: 0, 6: 0, 8: 4, 9: 4 * n})
    assert np.isclose(mem.read_array("C", (1,))[0], np.dot(A, B))
    return res


class TestFigure3:
    """Accumulator variable expansion on the matrix-multiply inner loop."""

    @pytest.mark.parametrize(
        "level,expected",
        [(Level.CONV, 8), (Level.LEV2, 14), (Level.LEV4, 8)],
    )
    def test_levels(self, level, expected):
        f, counted = build_fig3()
        sb, rep = apply_ilp_transforms(f, counted, level, unlimited(), unroll_factor=3)
        scheds = schedule_function(f, unlimited(), sb=sb)
        assert scheds[sb.header].makespan == expected
        run_fig3(f)
        if level == Level.LEV4:
            assert rep.accumulators == 1
            assert rep.inductions == 2

    def test_accumulator_expansion_alone_10_cycles(self):
        """Figure 3(d) exactly: unroll + rename + accumulator expansion."""
        f, counted = build_fig3()
        loop = next(l for l in find_loops(f) if l.header == "L1")
        counted = unroll_counted(f, loop, counted, 3)
        loop = next(l for l in find_loops(f) if l.header == "L1")
        sb = form_superblock(f, loop, counted)
        rename_superblock(sb)
        assert expand_accumulators(sb) == 1
        verify_function(f)
        scheds = schedule_function(f, unlimited(), sb=sb)
        assert scheds["L1"].makespan == 10
        run_fig3(f)


FIG5_SRC = """
function fig5:
entry:
L1:
  r3f = MEM(A+r2i)
  r4f = MEM(B+r2i)
  r5f = r3f * r4f
  MEM(C+r2i) = r5f
  r2i = r2i + r7i
  r1i = r1i + 1
  blt (r1i r6i) L1
exit:
  halt
"""


class TestFigure5:
    """Induction variable expansion on C(j) = A(j)*B(j); j += K."""

    @pytest.mark.parametrize(
        "level,expected",
        [(Level.CONV, 6), (Level.LEV2, 8), (Level.LEV4, 6)],
    )
    def test_levels(self, level, expected):
        f = parse_function(FIG5_SRC)
        blk = f.get_block("L1")
        counted = CountedLoop(
            "L1", Reg(1, RegClass.INT), 1, Reg(6, RegClass.INT),
            blk.instrs[6], blk.instrs[5],
        )
        sb, rep = apply_ilp_transforms(f, counted, level, unlimited(), unroll_factor=3)
        scheds = schedule_function(f, unlimited(), sb=sb, doall=True)
        assert scheds[sb.header].makespan == expected
        if level == Level.LEV4:
            assert rep.inductions == 2  # both the counter and the j chain

        n = 30
        mem = Memory()
        A = np.arange(1.0, 2 * n + 1)
        B = np.arange(2.0, 2 * n + 2)
        mem.bind_array("A", A)
        mem.bind_array("B", B)
        mem.bind_array("C", np.zeros(2 * n))
        simulate(f, unlimited(), mem, iregs={1: 1, 2: 0, 6: n + 1, 7: 4})
        C = mem.read_array("C", (2 * n,))
        expect = np.zeros(2 * n)
        expect[:n] = A[:n] * B[:n]
        assert np.array_equal(C, expect)


class TestFigure6:
    """Operation combining."""

    def test_combining_7_to_5_cycles(self):
        body = parse_block(
            """
            r1i = r1i + 4
            r2f = MEM(r1i+8)
            r3f = r2f - 3.2
            fblt (r3f 10.0) L1
            """
        ).instrs
        assert list_schedule(body, unlimited()).makespan == 7
        assert combine_operations(body) == 2
        s = list_schedule(body, unlimited())
        assert s.makespan == 5
        # the load absorbed the increment (address +12) and the branch
        # compares the loaded value directly against 13.2
        rendered = [str(i) for i in body]
        assert "r2f = MEM(r1i+12)" in rendered
        assert "fblt (r2f 13.2) L1" in rendered


class TestFigure7:
    """Tree height reduction of A = B * (C + D) * E * F / G."""

    def test_22_to_13_cycles(self):
        f = Function("thr")
        blk = f.add_block("entry")
        for text in [
            "r1f = r10f + r11f",  # C + D
            "r2f = r1f * r9f",    # * B
            "r3f = r2f * r12f",   # * E
            "r4f = r3f * r13f",   # * F
            "r5f = r4f / r14f",   # / G
        ]:
            blk.append(parse_instr(text))
        f.reindex_regs()
        body = blk.instrs
        assert list_schedule(body, unlimited()).makespan == 22
        assert reduce_tree_height(f, body, unlimited()) == 1
        assert list_schedule(body, unlimited()).makespan == 13

    def test_semantics_preserved(self):
        rng = np.random.default_rng(7)
        vals = {9 + i: float(v) for i, v in enumerate(rng.integers(1, 50, 6))}
        f = Function("thr")
        blk = f.add_block("entry")
        for text in [
            "r1f = r10f + r11f",
            "r2f = r1f * r9f",
            "r3f = r2f * r12f",
            "r4f = r3f * r13f",
            "r5f = r4f / r14f",
            "halt",
        ]:
            blk.append(parse_instr(text))
        f.reindex_regs()
        B, C, D, E, Fv, G = (vals[k] for k in (9, 10, 11, 12, 13, 14))
        expect = B * (C + D) * E * Fv / G
        reduce_tree_height(f, blk.instrs, unlimited())
        res = simulate(f, unlimited(), Memory(), fregs=vals)
        assert np.isclose(res.fregs[5], expect)
