"""Chaos integration suite: injected faults must change *nothing* about
the results and every fault must be visible in a recovery counter.

Covers the supervised pool directly (crash/hang/flaky workers), the
chaos runner end-to-end per fault family (sweep + served batch compared
against fault-free baselines), graceful degradation (stale store serve
when saturated), and breaker quarantine surfacing as HTTP 503.
"""

import json

import pytest

from repro.resilience import faults
from repro.resilience.chaos import load_plan, run_chaos
from repro.resilience.faults import FaultPlan, FaultSite
from repro.resilience.supervisor import (
    CellQuarantined,
    SupervisedPool,
    TaskFailed,
)

GRID = dict(workloads=("add", "sum"), levels=(0, 4), widths=(1, 8))


def _square(x):
    return x * x


# ---------------------------------------------------------------------------
# the supervised pool, in isolation
# ---------------------------------------------------------------------------


class TestSupervisedPool:
    def test_plain_tasks_complete(self):
        with SupervisedPool(2) as pool:
            futs = [pool.submit(_square, i, key=f"sq-{i}") for i in range(6)]
            assert [f.result(timeout=30) for f in futs] == [i * i
                                                            for i in range(6)]
            assert pool.counters["tasks_ok"] == 6
            assert pool.counters["redispatched"] == 0

    def test_killed_workers_are_replaced_and_tasks_redispatched(self):
        plan = FaultPlan(seed=0, sites=(FaultSite("worker.kill", rate=1.0),))
        with faults.armed(plan):
            with SupervisedPool(2) as pool:
                futs = [pool.submit(_square, i, key=f"k-{i}")
                        for i in range(4)]
                assert [f.result(timeout=60) for f in futs] == [0, 1, 4, 9]
                # every task's first attempt died; all recovered exactly once
                assert pool.counters["redispatched"] == 4
                assert pool.counters["worker_restarts"] >= 4

    def test_hung_workers_hit_the_deadline_and_recover(self):
        plan = FaultPlan(seed=0, sites=(
            FaultSite("worker.hang", rate=1.0, delay_s=60.0),))
        with faults.armed(plan):
            with SupervisedPool(2, deadline_s=0.5) as pool:
                futs = [pool.submit(_square, i, key=f"h-{i}")
                        for i in range(2)]
                assert [f.result(timeout=60) for f in futs] == [0, 1]
                assert pool.counters["deadline_kills"] == 2
                assert pool.counters["redispatched"] == 2

    def test_transient_errors_retry_in_place(self):
        plan = FaultPlan(seed=0, sites=(FaultSite("worker.error", rate=1.0),))
        with faults.armed(plan):
            with SupervisedPool(2) as pool:
                fut = pool.submit(_square, 5, key="t-5")
                assert fut.result(timeout=30) == 25
                assert pool.counters["retries"] == 1

    def test_fatal_errors_fail_the_task_without_retry(self):
        plan = FaultPlan(seed=0, sites=(
            FaultSite("worker.error", rate=1.0, fires=99, fatal=True),))
        with faults.armed(plan):
            with SupervisedPool(1) as pool:
                with pytest.raises(TaskFailed):
                    pool.submit(_square, 1, key="f-1").result(timeout=30)
                assert pool.counters["retries"] == 0
                assert pool.counters["tasks_failed"] == 1

    def test_breaker_quarantines_a_persistently_failing_cell(self):
        plan = FaultPlan(seed=0, sites=(
            FaultSite("worker.error", rate=1.0, fires=99, fatal=True),))
        with faults.armed(plan):
            with SupervisedPool(1, failure_threshold=2,
                                breaker_cooldown_s=3600.0) as pool:
                for i in range(2):
                    with pytest.raises(TaskFailed):
                        pool.submit(_square, i, key=f"b-{i}",
                                    cell=("bad", 0)).result(timeout=30)
                with pytest.raises(CellQuarantined):
                    pool.submit(_square, 9, key="b-9",
                                cell=("bad", 0)).result(timeout=30)
                assert pool.counters["quarantined"] == 1
                assert pool.breaker_states()["('bad', 0)"]["state"] == "open"
                # quarantine is per cell: an unrelated cell is still
                # dispatched (it fails in-task here — the plan selects
                # every key — but it is NOT fast-failed by the breaker)
                with pytest.raises(TaskFailed):
                    pool.submit(_square, 3, key="ok-3",
                                cell=("good", 0)).result(timeout=30)
                assert pool.counters["quarantined"] == 1


# ---------------------------------------------------------------------------
# the chaos runner: byte-identical results + full accounting per family
# ---------------------------------------------------------------------------


def _chaos(plan, tmp_path, serve=False, **kw):
    report = run_chaos(plan, jobs=2, workdir=tmp_path / "chaos",
                       out=tmp_path / "report.json", serve=serve,
                       verbose=False, **GRID, **kw)
    # every check must hold, not just the aggregate flag
    bad = [c for c in report["checks"] if not c["ok"]]
    assert not bad, f"unaccounted faults: {bad}"
    assert report["ok"]
    # the report artifact is written and loadable
    assert json.loads((tmp_path / "report.json").read_text())["ok"]
    return report


class TestChaosRunner:
    def test_worker_kills_leave_results_identical(self, tmp_path):
        r = _chaos("kill", tmp_path)
        assert r["sweep"]["identical"]
        assert r["sweep"]["resilience"]["redispatched"] >= 1

    def test_torn_writes_are_quarantined_not_served(self, tmp_path):
        r = _chaos("torn", tmp_path)
        assert r["sweep"]["identical"]
        assert r["sweep"]["injected"].get("store.torn_write", 0) >= 1

    def test_store_write_errors_retry_and_land(self, tmp_path):
        r = _chaos("enospc", tmp_path)
        assert r["sweep"]["identical"]
        assert r["sweep"]["store"]["put_retries"] >= 1
        assert r["sweep"]["store"]["put_failures"] == 0

    def test_hung_workers_recover_via_deadline_kills(self, tmp_path):
        r = _chaos("hang", tmp_path)
        assert r["sweep"]["identical"]
        assert r["sweep"]["resilience"]["deadline_kills"] >= 1

    def test_dropped_responses_are_retried_by_the_client(self, tmp_path):
        r = _chaos("drop", tmp_path, serve=True)
        assert r["serve"]["identical"]
        assert r["serve"]["injected"].get("server.drop_response", 0) >= 1
        assert (r["serve"]["client_retries"]
                >= r["serve"]["injected"]["server.drop_response"])

    def test_everything_at_once(self, tmp_path):
        r = _chaos("all", tmp_path, serve=True)
        assert r["sweep"]["identical"] and r["serve"]["identical"]
        injected = dict(r["sweep"]["injected"])
        for site, n in r["serve"]["injected"].items():
            injected[site] = injected.get(site, 0) + n
        assert sum(injected.values()) >= 3


# ---------------------------------------------------------------------------
# sweep-level failure semantics
# ---------------------------------------------------------------------------


class TestSweepFailureSemantics:
    def _run(self, strict):
        from repro.experiments.sweep import run_sweep
        from repro.workloads import get_workload

        plan = FaultPlan(seed=0, sites=(
            FaultSite("worker.error", rate=1.0, fires=99, fatal=True),))
        with faults.armed(plan):
            return run_sweep([get_workload("add")], levels=(0, 4),
                             widths=(1,), jobs=2, strict=strict)

    def test_strict_sweep_raises_on_permanent_cell_failure(self):
        from repro.experiments.sweep import SweepError

        with pytest.raises(SweepError):
            self._run(strict=True)

    def test_lenient_sweep_records_failures_and_continues(self):
        data = self._run(strict=False)
        assert len(data.failed) == 2            # both (add, level) cells
        assert data.results == {}
        assert data.resilience["tasks_failed"] == 2


# ---------------------------------------------------------------------------
# graceful degradation + quarantine over HTTP
# ---------------------------------------------------------------------------


class TestServiceDegradation:
    def test_saturated_server_serves_stale_from_store(self, tmp_path):
        from repro.service.client import ServiceClient, ServiceOverloaded
        from repro.service.server import serve_background

        store = tmp_path / "store"
        # 1: populate the store through a healthy server
        httpd, engine, url = serve_background(store_dir=store, jobs=1)
        try:
            ServiceClient(url).run("add", level=0, width=1)
        finally:
            httpd.shutdown()
            engine.close()
        # 2: a saturated server (zero admission capacity) must degrade to
        # the stored result rather than shed it...
        httpd, engine, url = serve_background(store_dir=store, jobs=1,
                                              max_pending=0)
        try:
            client = ServiceClient(url, retry=None)
            reply = client.run("add", level=0, width=1)
            assert reply["degraded"] is True
            assert reply["cache"] == "degraded"
            assert reply["result"]["cycles"] > 0
            # ...while an uncached configuration still sheds honestly
            with pytest.raises(ServiceOverloaded):
                client.run("add", level=4, width=8)
            m = client.metrics()
            assert m["resilience"]["degraded_serves"] == 1
            assert m["shed"] >= 1
        finally:
            httpd.shutdown()
            engine.close()

    def test_quarantined_cell_surfaces_as_503(self, tmp_path):
        from repro.service.client import ServiceClient, ServiceRequestError
        from repro.service.server import serve_background

        plan = FaultPlan(seed=0, sites=(
            FaultSite("worker.error", rate=1.0, fires=99, fatal=True),))
        with faults.armed(plan):
            httpd, engine, url = serve_background(jobs=1)
        try:
            client = ServiceClient(url, retry=None)
            # drive the (add, 0) cell to its breaker threshold
            for _ in range(5):
                with pytest.raises(ServiceRequestError) as ei:
                    client.run("add", level=0, width=1)
                assert ei.value.status == 500
            with pytest.raises(ServiceRequestError) as ei:
                client.run("add", level=0, width=1)
            assert ei.value.status == 503
            # /healthz exposes the open breaker and live worker state
            h = client.healthz()
            assert h["ok"] is True
            assert any(b["state"] == "open"
                       for b in h["pool"]["breakers"].values())
            assert all(w["alive"] for w in h["pool"]["workers"])
            m = client.metrics()
            assert m["resilience"]["quarantined"] >= 1
            assert m["resilience"]["breaker_trips"] >= 1
        finally:
            httpd.shutdown()
            engine.close()


# ---------------------------------------------------------------------------
# cluster node-kill: a whole node dies, the fleet's answers don't change
# ---------------------------------------------------------------------------


class TestClusterChaos:
    def test_node_kill_reconciles_exactly(self, tmp_path):
        """SIGKILL a whole node (engine + fork pool + store shard)
        mid-batch: every request is served byte-identically to a
        fault-free single-node baseline, the router's failovers match
        the ring's prediction exactly, and the victim's lost artifacts
        are recomputed exactly once each."""
        from repro.cluster.chaos import run_cluster_chaos

        report = run_cluster_chaos(
            nodes=3, jobs=1,
            workloads=("add", "sum"), levels=(0, 4), widths=(1, 8),
            workdir=tmp_path, out=tmp_path / "report.json", verbose=False)
        assert report["ok"], report["checks"]
        # the kill must have actually disturbed the batch: the victim
        # owned second-half keys, so failovers are inevitable
        assert report["router"]["failovers"] > 0
        assert report["victim_owned"]["second_half"] > 0
        assert (tmp_path / "report.json").exists()
        assert json.loads(
            (tmp_path / "report.json").read_text())["ok"] is True
