"""Regression tests for the fast sweep engine.

The engine layers three reuse/parallelism mechanisms on the grid run
(width-sharded compilation, a fork-based process pool, and a resumable
JSONL journal); these tests pin the one property that makes them safe:
every path produces *identical* results.
"""

import json

import pytest

from repro.experiments.sweep import (
    CACHE_VERSION,
    ConfigResult,
    load_sweep,
    read_journal,
    run_config,
    run_sweep,
    save_sweep,
)
from repro.harness import (
    compile_kernel,
    ilp_transform,
    lower_conv,
    schedule_kernel,
)
from repro.machine import MachineConfig
from repro.pipeline import Level
from repro.workloads import get_workload

WORKLOADS = ("add", "sum", "maxval")
LEVELS = (Level.CONV, Level.LEV4)
WIDTHS = (1, 8)


def _key_fields(r: ConfigResult) -> tuple:
    """Everything that must be bit-identical across engine paths
    (timing fields legitimately differ)."""
    return (r.workload, r.level, r.width, r.cycles, r.instructions,
            r.inner_makespan, r.int_regs, r.fp_regs, r.checked)


@pytest.fixture(scope="module")
def serial_sweep():
    wls = [get_workload(n) for n in WORKLOADS]
    return run_sweep(wls, LEVELS, WIDTHS)


class TestStagedCompile:
    def test_staged_equals_monolithic(self):
        """transform-once + schedule-per-width == full recompilation."""
        w = get_workload("dotprod")
        kernel = w.build()
        conv = lower_conv(kernel)
        for level in LEVELS:
            tk = ilp_transform(conv.clone(), level, MachineConfig(issue_width=8))
            for width in (1, 2, 4, 8):
                machine = MachineConfig(issue_width=width)
                ref = compile_kernel(kernel, level, machine)
                new = schedule_kernel(tk.clone(), machine)
                assert new.inner_makespan == ref.inner_makespan
                ref_instrs = [str(i) for b in ref.func.blocks for i in b.instrs]
                new_instrs = [str(i) for b in new.func.blocks for i in b.instrs]
                assert new_instrs == ref_instrs

    def test_clone_isolates_mutation(self):
        """Scheduling a clone must not disturb the transformed original."""
        conv = lower_conv(get_workload("add").build())
        tk = ilp_transform(conv, Level.LEV4, MachineConfig(issue_width=8))
        before = [str(i) for b in tk.lowered.func.blocks for i in b.instrs]
        schedule_kernel(tk.clone(), MachineConfig(issue_width=8))
        after = [str(i) for b in tk.lowered.func.blocks for i in b.instrs]
        assert after == before


class TestParallelSweep:
    def test_parallel_identical_to_serial(self, serial_sweep):
        wls = [get_workload(n) for n in WORKLOADS]
        par = run_sweep(wls, LEVELS, WIDTHS, jobs=2)
        assert list(par.results.keys()) == list(serial_sweep.results.keys())
        for k in serial_sweep.results:
            assert _key_fields(par.results[k]) == _key_fields(serial_sweep.results[k])

    def test_run_config_matches_sweep(self, serial_sweep):
        """The single-configuration path agrees with the sharded task path."""
        r = run_config(get_workload("sum"), Level.LEV4, MachineConfig(issue_width=8))
        assert _key_fields(r) == _key_fields(serial_sweep.get("sum", Level.LEV4, 8))

    def test_phase_timings_recorded(self, serial_sweep):
        rs = list(serial_sweep.results.values())
        # transform cost is attributed to the first width of each task...
        assert all(r.t_compile > 0 for r in rs if r.width == WIDTHS[0])
        # ...and never smeared over the others
        assert all(r.t_compile == 0 for r in rs if r.width != WIDTHS[0])
        assert all(r.t_schedule > 0 and r.t_simulate > 0 for r in rs)


class TestJournalResume:
    def test_resume_skips_finished_configs(self, serial_sweep, tmp_path):
        journal = tmp_path / "sweep.journal.jsonl"
        wls = [get_workload(n) for n in WORKLOADS]

        first = run_sweep(wls[:2], LEVELS, WIDTHS, journal=journal)
        assert first.computed == 2 * len(LEVELS) * len(WIDTHS)
        assert first.reused == 0

        resumed = run_sweep(wls, LEVELS, WIDTHS, journal=journal, jobs=2)
        assert resumed.reused == first.computed  # nothing recomputed
        assert resumed.computed == len(LEVELS) * len(WIDTHS)  # only maxval
        for k in serial_sweep.results:
            assert _key_fields(resumed.results[k]) == _key_fields(serial_sweep.results[k])

    def test_truncated_tail_tolerated(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        wls = [get_workload("add")]
        run_sweep(wls, LEVELS, WIDTHS, journal=journal)
        journal.write_text(journal.read_text() + '{"workload": "tru')  # died mid-write
        again = run_sweep(wls, LEVELS, WIDTHS, journal=journal)
        assert again.computed == 0
        assert again.reused == len(LEVELS) * len(WIDTHS)

    def test_torn_final_line_skipped_and_reported(self, serial_sweep, tmp_path, capsys):
        """A final record torn mid-write — even mid-multibyte-character,
        leaving invalid UTF-8 — is skipped, reported, and recomputed."""
        journal = tmp_path / "j.jsonl"
        wls = [get_workload(n) for n in WORKLOADS]
        first = run_sweep(wls, LEVELS, WIDTHS, journal=journal)

        raw = journal.read_bytes()
        journal.write_bytes(raw[:-20] + b"\xff")  # torn + undecodable tail

        skips = []
        loaded = read_journal(journal, seed=0, check=True,
                              on_skip=lambda lineno, line: skips.append(lineno))
        assert len(loaded) == first.computed - 1
        assert len(skips) == 1

        resumed = run_sweep(wls, LEVELS, WIDTHS, journal=journal)
        assert resumed.journal_skipped == 1
        assert resumed.computed == 1  # only the torn configuration
        assert resumed.reused == first.computed - 1
        assert "skipped 1 corrupt line" in capsys.readouterr().err
        for k in serial_sweep.results:
            assert _key_fields(resumed.results[k]) == _key_fields(serial_sweep.results[k])

        # appending after a torn tail must newline-terminate it first, or
        # the new record would concatenate onto the torn bytes: a third
        # resume sees every appended record and recomputes nothing
        third = run_sweep(wls, LEVELS, WIDTHS, journal=journal)
        assert third.journal_skipped == 1  # the torn line itself remains
        assert third.computed == 0
        assert third.reused == first.computed

    def test_corrupt_middle_line_recomputed(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        wls = [get_workload("add")]
        run_sweep(wls, LEVELS, WIDTHS, journal=journal)
        lines = journal.read_bytes().splitlines(keepends=True)
        lines[2] = b'{"workload": \xfe garbage\n'
        journal.write_bytes(b"".join(lines))
        again = run_sweep(wls, LEVELS, WIDTHS, journal=journal)
        assert again.journal_skipped == 1
        assert again.computed == 1
        assert again.reused == len(LEVELS) * len(WIDTHS) - 1

    def test_mismatched_header_rejected(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        run_sweep([get_workload("add")], LEVELS, WIDTHS, seed=0, journal=journal)
        assert read_journal(journal, seed=1, check=True) == {}
        assert len(read_journal(journal, seed=0, check=True)) == 4

    def test_resume_false_recomputes(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        wls = [get_workload("add")]
        run_sweep(wls, LEVELS, WIDTHS, journal=journal)
        fresh = run_sweep(wls, LEVELS, WIDTHS, journal=journal, resume=False)
        assert fresh.reused == 0
        assert fresh.computed == len(LEVELS) * len(WIDTHS)


class TestPartialCache:
    def test_partial_grid_loadable_on_request(self, serial_sweep, tmp_path):
        p = tmp_path / "sweep.json"
        save_sweep(serial_sweep, p)
        assert load_sweep(p) is None  # figures need the full grid
        part = load_sweep(p, require_complete=False)
        assert part is not None
        assert len(part.results) == len(serial_sweep.results)
        for k in serial_sweep.results:
            assert _key_fields(part.results[k]) == _key_fields(serial_sweep.results[k])

    def test_version3_payload_still_loads(self, serial_sweep, tmp_path):
        p = tmp_path / "sweep.json"
        save_sweep(serial_sweep, p)
        payload = json.loads(p.read_text())
        payload["version"] = 3
        for r in payload["results"]:
            for f in ("t_compile", "t_schedule", "t_simulate"):
                del r[f]
        p.write_text(json.dumps(payload))
        v3 = load_sweep(p, require_complete=False)
        assert v3 is not None
        assert len(v3.results) == len(serial_sweep.results)
        assert all(r.t_compile == 0.0 for r in v3.results.values())

    def test_unknown_version_rejected(self, serial_sweep, tmp_path):
        p = tmp_path / "sweep.json"
        save_sweep(serial_sweep, p)
        payload = json.loads(p.read_text())
        payload["version"] = CACHE_VERSION + 1
        p.write_text(json.dumps(payload))
        assert load_sweep(p, require_complete=False) is None


class TestArtifactStoreLayer:
    """The persistent (cross-process, cross-sweep) cache under `--store`."""

    def _store(self, tmp_path):
        from repro.service.store import ArtifactStore

        return ArtifactStore(tmp_path / "store")

    def test_warm_sweep_is_all_hits_and_byte_identical(self, tmp_path):
        from dataclasses import asdict

        store = self._store(tmp_path)
        wls = [get_workload(n) for n in WORKLOADS]
        cold = run_sweep(wls, LEVELS, WIDTHS, store=store)
        n = len(WORKLOADS) * len(LEVELS) * len(WIDTHS)
        assert cold.computed == n and cold.store_hits == 0

        warm = run_sweep(wls, LEVELS, WIDTHS, store=store)
        assert warm.computed == 0 and warm.store_hits == n
        # byte-identical, not merely numerically equal: even the
        # execution-ordered t_passes maps round-trip through the blobs
        dump = lambda d: json.dumps(  # noqa: E731
            [asdict(d.results[k]) for k in sorted(d.results)])
        assert dump(warm) == dump(cold)

    def test_store_fills_the_gap_the_journal_missed(self, tmp_path):
        store = self._store(tmp_path)
        wls = [get_workload(n) for n in WORKLOADS]
        journal = tmp_path / "j.jsonl"
        # journal knows two workloads; the store knows all three
        run_sweep(wls, LEVELS, WIDTHS, store=store)
        run_sweep(wls[:2], LEVELS, WIDTHS, journal=journal)
        both = run_sweep(wls, LEVELS, WIDTHS, journal=journal, store=store)
        per_wl = len(LEVELS) * len(WIDTHS)
        assert both.reused == 2 * per_wl       # from the journal
        assert both.store_hits == per_wl       # only maxval from the store
        assert both.computed == 0

    def test_corrupt_blob_recomputed_not_served(self, tmp_path):
        store = self._store(tmp_path)
        wls = [get_workload("add")]
        run_sweep(wls, LEVELS, WIDTHS, store=store)
        for p in (store.root / "objects").glob("??/*.json"):
            p.write_bytes(p.read_bytes()[:40])  # tear every blob
        again = run_sweep(wls, LEVELS, WIDTHS, store=store)
        assert again.store_hits == 0
        assert again.computed == len(LEVELS) * len(WIDTHS)
        assert store.stats.quarantined > 0

    def test_foreign_schema_blob_recomputed(self, tmp_path):
        """A blob that parses but is not a ConfigResult (e.g. written by a
        different tool under the same key) is skipped, not crashed on."""
        from repro.service.keys import request_key, workload_fingerprint

        store = self._store(tmp_path)
        k = request_key("result", "add", int(LEVELS[1]), WIDTHS[0],
                        fingerprint=workload_fingerprint("add"))
        store.put(k, {"not": "a ConfigResult"})
        out = run_sweep([get_workload("add")], LEVELS, WIDTHS, store=store)
        assert out.store_hits == 0
        assert out.computed == len(LEVELS) * len(WIDTHS)
