"""Unit tests for interference construction and register-usage coloring."""

import pytest

from repro.ir import fp_reg, int_reg, parse_function
from repro.regalloc import (
    build_interference,
    color_class,
    measure_register_usage,
)
from repro.ir.operands import RegClass


class TestInterference:
    def test_sequential_reuse_no_interference(self):
        f = parse_function(
            """
function t:
A:
  r1i = 1
  MEM(X) = r1i
  r2i = 2
  MEM(X) = r2i
  halt
"""
        )
        g = build_interference(f)
        assert int_reg(2) not in g.adj[int_reg(1)]

    def test_overlapping_ranges_interfere(self):
        f = parse_function(
            """
function t:
A:
  r1i = 1
  r2i = 2
  r3i = r1i + r2i
  MEM(X) = r3i
  halt
"""
        )
        g = build_interference(f)
        assert int_reg(2) in g.adj[int_reg(1)]

    def test_classes_never_interfere(self):
        f = parse_function(
            "function t:\nA:\n  r1i = 1\n  r1f = 2.0\n  MEM(X) = r1i\n  MEM(Y) = r1f\n  halt\n"
        )
        g = build_interference(f)
        assert fp_reg(1) not in g.adj[int_reg(1)]

    def test_entry_live_ins_interfere(self):
        f = parse_function(
            "function t:\nA:\n  r3i = r1i + r2i\n  MEM(X) = r3i\n  halt\n"
        )
        g = build_interference(f)
        assert int_reg(2) in g.adj[int_reg(1)]

    def test_loop_carried_interference(self):
        f = parse_function(
            """
function t:
A:
L:
  r2i = r1i + 1
  r1i = r2i + r3i
  blt (r1i r4i) L
exit:
  halt
"""
        )
        g = build_interference(f)
        # r3i is live across everything, including both defs
        assert int_reg(3) in g.adj[int_reg(1)]
        assert int_reg(3) in g.adj[int_reg(2)]


class TestColoring:
    def test_coloring_is_proper(self):
        f = parse_function(
            """
function t:
A:
  r1i = 1
  r2i = 2
  r3i = 3
  r4i = r1i + r2i
  r5i = r4i + r3i
  MEM(X) = r5i
  halt
"""
        )
        g = build_interference(f)
        colors = color_class(g, RegClass.INT)
        for r, c in colors.items():
            for n in g.adj[r]:
                if n in colors:
                    assert colors[n] != c

    def test_usage_counts_reuse(self):
        # two disjoint live ranges share one register
        f = parse_function(
            """
function t:
A:
  r1i = 1
  MEM(X) = r1i
  r2i = 2
  MEM(X) = r2i
  halt
"""
        )
        u = measure_register_usage(f)
        assert u.int_regs == 1
        assert u.fp_regs == 0

    def test_usage_grows_with_overlap(self):
        lines = [f"  r{k}i = {k}" for k in range(1, 6)]
        adds = ["  r6i = r1i + r2i", "  r6i = r6i + r3i",
                "  r6i = r6i + r4i", "  r6i = r6i + r5i", "  MEM(X) = r6i"]
        f = parse_function("function t:\nA:\n" + "\n".join(lines + adds) + "\n  halt\n")
        u = measure_register_usage(f)
        assert u.int_regs >= 5

    def test_totals(self):
        f = parse_function(
            "function t:\nA:\n  r1i = 1\n  r1f = 2.0\n  MEM(X) = r1i\n  MEM(Y) = r1f\n  halt\n"
        )
        u = measure_register_usage(f)
        assert u.total == u.int_regs + u.fp_regs == 2
