"""Strength-reduced division/remainder vs. the executor's semantics.

The 4-instruction div and 6-instruction rem sequences replace DIV/REM by
powers of two, so they must reproduce ``repro.sim.executor._idiv`` /
``_irem`` exactly — truncating *toward zero*, where a plain arithmetic
shift would floor.  Negative dividends are where the two disagree, hence
the bias instructions and these regressions.
"""

import pytest

from repro.ir import Function, Op, parse_instr, verify_function
from repro.machine import unlimited
from repro.sim import Memory, simulate
from repro.sim.executor import _idiv, _irem
from repro.transforms.strength import SIGN_SMEAR_SHIFT, reduce_strength

DIVIDENDS = sorted(
    set(range(-20, 21))
    | {v * s for v in (31, 32, 33, 63, 64, 65, 1023, 1024, 1025, 2**31 - 1)
       for s in (1, -1)}
)


def reduce_and_run(text: str, r2: int):
    f = Function("t")
    blk = f.add_block("A")
    for line in text.strip().splitlines():
        blk.append(parse_instr(line.strip()))
    f.reindex_regs()
    reduce_strength(f, blk.instrs)
    body = list(blk.instrs)
    blk.append(parse_instr("halt"))
    verify_function(f)
    res = simulate(f, unlimited(), Memory(), iregs={2: r2})
    return res.iregs, body


class TestRoundTowardZero:
    @pytest.mark.parametrize("k", [2, 4, 8, 64, 1024])
    def test_div_matches_idiv(self, k):
        for v in DIVIDENDS:
            regs, body = reduce_and_run(f"r1i = r2i / {k}", v)
            assert regs[1] == _idiv(v, k), (v, k)

    @pytest.mark.parametrize("k", [2, 4, 8, 64, 1024])
    def test_rem_matches_irem(self, k):
        for v in DIVIDENDS:
            regs, body = reduce_and_run(f"r3i = r2i % {k}", v)
            assert regs[3] == _irem(v, k), (v, k)

    def test_negative_dividend_differs_from_floor(self):
        # the whole point of the bias: -7 >> 2 floors to -2, but the
        # FORTRAN/C semantics the executor implements truncate to -1
        regs, _ = reduce_and_run("r1i = r2i / 4", -7)
        assert regs[1] == -1 == _idiv(-7, 4)
        assert (-7 >> 2) == -2  # what an unbiased shift would give


class TestSequenceShape:
    def test_div_is_four_instructions(self):
        _, body = reduce_and_run("r1i = r2i / 8", -9)
        assert len(body) == 4
        assert [i.op for i in body] == [Op.SHRA, Op.AND, Op.ADD, Op.SHRA]
        assert body[0].srcs[1].value == SIGN_SMEAR_SHIFT

    def test_rem_is_six_instructions(self):
        _, body = reduce_and_run("r3i = r2i % 8", -9)
        assert len(body) == 6
        assert [i.op for i in body] == [
            Op.SHRA, Op.AND, Op.ADD, Op.SHRA, Op.SHL, Op.SUB,
        ]

    def test_div_by_one_is_move(self):
        regs, body = reduce_and_run("r1i = r2i / 1", -9)
        assert [i.op for i in body] == [Op.MOV]
        assert regs[1] == -9
