"""Unit tests for Lev5 superword-level parallelism (pack merging).

The IR-level tests follow the input-IR -> expected-IR idiom: a hand
written superblock goes through :func:`vectorize_superblock` and the
printed result is compared against the expected vector code verbatim
(the printer/parser round-trip pins the concrete syntax too).  The
pipeline-level tests pin the pass's contract with the rest of the
stack: disabling ``slp`` makes Lev5 coincide with Lev4, and the
reassociating reduction shape is flagged so the oracle compares it
within tolerance.
"""

import numpy as np
import pytest

from repro.harness import compile_kernel, run_compiled_kernel
from repro.ir import (
    format_function,
    fp_reg,
    parse_function,
    verify_function,
)
from repro.ir.instructions import Kind
from repro.machine import MachineConfig, unlimited
from repro.passes import PassOptions
from repro.pipeline import Level
from repro.schedule.superblock import SuperblockLoop
from repro.sim import Memory, simulate
from repro.transforms.slp import vectorize_superblock
from repro.workloads import check_run, get_workload


def make_sb(src, header="L", preheader="entry", exit_block="exit"):
    f = parse_function(src)
    bm = f.block_map()
    sb = SuperblockLoop(
        func=f,
        body=bm[header],
        preheader=bm[preheader],
        counted=None,
        exit_block=bm[exit_block],
    )
    return f, sb


def body_text(f, label="L"):
    return "\n".join(
        format_function(f).split(f"{label}:\n", 1)[1].splitlines()
    )


# an unrolled-by-4 scaled copy: four isomorphic load/multiply/store
# lanes on adjacent words, each lane with its own stepped pointer
SCALE4 = """
function t:
entry:
  r1i = 0
  r2i = r1i + 4
  r3i = r1i + 8
  r4i = r1i + 12
L:
  r10f = MEM(A+r1i)
  r11f = MEM(A+r2i)
  r12f = MEM(A+r3i)
  r13f = MEM(A+r4i)
  r14f = r10f * r20f
  r15f = r11f * r20f
  r16f = r12f * r20f
  r17f = r13f * r20f
  MEM(B+r1i) = r14f
  MEM(B+r2i) = r15f
  MEM(B+r3i) = r16f
  MEM(B+r4i) = r17f
  r1i = r1i + 16
  r2i = r2i + 16
  r3i = r3i + 16
  r4i = r4i + 16
  blt (r1i r9i) L
exit:
  halt
"""

SCALE4_PACKED = """\
function t:
entry:
  r1i = 0
  r2i = r1i + 4
  r3i = r1i + 8
  r4i = r1i + 12
L:
  r1vf = vldf.4(A, r1i)
  r2vf = vpackf.4(r20f, r20f, r20f, r20f)
  r3vf = vfmul.4(r1vf, r2vf)
  vstf.4(B, r1i, r3vf)
  r1i = r1i + 16
  r2i = r2i + 16
  r3i = r3i + 16
  r4i = r4i + 16
  blt (r1i r9i) L
exit:
  halt"""


class TestStorePacking:
    def test_packs_to_expected_ir(self):
        f, sb = make_sb(SCALE4)
        n, reassoc = vectorize_superblock(sb, MachineConfig(issue_width=8),
                                          set())
        assert (n, reassoc) == (1, 0)
        assert format_function(f) == SCALE4_PACKED
        verify_function(f)

    def test_packed_ir_round_trips_through_parser(self):
        f, sb = make_sb(SCALE4)
        vectorize_superblock(sb, MachineConfig(issue_width=8), set())
        text = format_function(f)
        again = parse_function(text)
        verify_function(again)
        assert format_function(again) == text

    def test_packed_code_computes_the_same_result(self):
        f, sb = make_sb(SCALE4)
        vectorize_superblock(sb, MachineConfig(issue_width=8), set())
        n = 24
        mem = Memory()
        A = np.arange(1.0, n + 1)
        mem.bind_array("A", A)
        mem.bind_array("B", np.zeros(n))
        simulate(f, unlimited(), mem, iregs={1: 0, 9: 4 * n},
                 fregs={20: 3.0})
        assert np.array_equal(mem.read_array("B", (n,)), A * 3.0)


class TestRefusals:
    def test_strided_stores_are_not_seeds(self):
        # every address stepped by 8 bytes: no adjacent word run exists
        src = (SCALE4
               .replace("r2i = r1i + 4", "r2i = r1i + 8")
               .replace("r3i = r1i + 8", "r3i = r1i + 16")
               .replace("r4i = r1i + 12", "r4i = r1i + 24"))
        f, sb = make_sb(src)
        before = format_function(f)
        assert vectorize_superblock(sb, MachineConfig(issue_width=8),
                                    set()) == (0, 0)
        assert format_function(f) == before

    def test_shared_loads_defined_inside_span_refuse(self):
        # two interleaved streams sharing their loads: the loads are
        # double-used (not packable) and lanes 1..3 of the fallback
        # gather are defined after the insertion point, so both
        # components must be refused rather than miscompiled
        src = """
function t:
entry:
  r1i = 0
  r2i = r1i + 4
L:
  r10f = MEM(A+r1i)
  r11f = MEM(B+r1i)
  r12f = r10f + r11f
  MEM(F+r1i) = r12f
  r13f = r10f - r11f
  MEM(G+r1i) = r13f
  r14f = MEM(A+r2i)
  r15f = MEM(B+r2i)
  r16f = r14f + r15f
  MEM(F+r2i) = r16f
  r17f = r14f - r15f
  MEM(G+r2i) = r17f
  r1i = r1i + 8
  r2i = r2i + 8
  blt (r1i r9i) L
exit:
  halt
"""
        f, sb = make_sb(src)
        before = format_function(f)
        machine = MachineConfig(issue_width=8, vector_lanes=2)
        assert vectorize_superblock(sb, machine, set()) == (0, 0)
        assert format_function(f) == before

    def test_cost_model_declines_under_hostile_latencies(self):
        # the same body that packs by default must be refused when the
        # vector ops are priced above the scalar code they replace
        f, sb = make_sb(SCALE4)
        m = MachineConfig(issue_width=8)
        hostile = MachineConfig(
            issue_width=8,
            latencies={**m.latencies, Kind.VEC_LOAD: 40,
                       Kind.VEC_FMUL: 40, Kind.VEC_STORE: 40},
        )
        before = format_function(f)
        assert vectorize_superblock(sb, hostile, set()) == (0, 0)
        assert format_function(f) == before

    def test_scalar_machine_disables_the_pass(self):
        f, sb = make_sb(SCALE4)
        m = MachineConfig(issue_width=8, vector_lanes=1)
        before = format_function(f)
        assert vectorize_superblock(sb, m, set()) == (0, 0)
        assert format_function(f) == before


REDUCE4 = """
function t:
entry:
  r1i = 0
  r2i = r1i + 4
  r3i = r1i + 8
  r4i = r1i + 12
L:
  r10f = MEM(A+r1i)
  r11f = MEM(A+r2i)
  r12f = MEM(A+r3i)
  r13f = MEM(A+r4i)
  r20f = r20f + r10f
  r21f = r21f + r11f
  r22f = r22f + r12f
  r23f = r23f + r13f
  r1i = r1i + 16
  r2i = r2i + 16
  r3i = r3i + 16
  r4i = r4i + 16
  blt (r1i r9i) L
exit:
  r24f = r20f + r21f
  r25f = r22f + r23f
  r26f = r24f + r25f
  halt
"""

CHAIN4 = REDUCE4.replace(
    """  r20f = r20f + r10f
  r21f = r21f + r11f
  r22f = r22f + r12f
  r23f = r23f + r13f""",
    """  r20f = r20f + r10f
  r20f = r20f + r11f
  r20f = r20f + r12f
  r20f = r20f + r13f""",
).replace(
    """exit:
  r24f = r20f + r21f
  r25f = r22f + r23f
  r26f = r24f + r25f
  halt""",
    """exit:
  halt""",
)


class TestReductionPacking:
    def test_exact_expanded_accumulators_pack(self):
        # four independent accumulators (the accumulate-expansion shape):
        # each vector lane replays exactly one scalar chain, so this
        # variant is bit-identical and must NOT count as reassociating
        f, sb = make_sb(REDUCE4)
        n, reassoc = vectorize_superblock(sb, MachineConfig(issue_width=8),
                                          {fp_reg(26)})
        assert (n, reassoc) == (1, 0)
        text = format_function(f)
        assert "r1vf = vpackf.4(r20f, r21f, r22f, r23f)" in text
        assert "r1vf = vfadd.4(r1vf, r2vf)" in text
        assert "r20f = vextf.4(r1vf, 0)" in text
        assert "r23f = vextf.4(r1vf, 3)" in text
        # the scalar exit combine chain survives untouched
        assert "r26f = r24f + r25f" in text
        verify_function(f)

    def test_exact_reduction_semantics(self):
        f, sb = make_sb(REDUCE4)
        vectorize_superblock(sb, MachineConfig(issue_width=8), {fp_reg(26)})
        n = 24
        mem = Memory()
        A = np.arange(1.0, n + 1)
        mem.bind_array("A", A)
        res = simulate(f, unlimited(), mem, iregs={1: 0, 9: 4 * n},
                       fregs={20: 0.0, 21: 0.0, 22: 0.0, 23: 0.0})
        assert res.fregs[26] == A.sum()

    def test_serial_chain_packs_as_reassociating(self):
        # one serial self-update chain: lane 0 is seeded with the carried
        # value, the other lanes with the additive identity, and the exit
        # re-sums the lanes — fp association changes, so the component is
        # counted in the reassoc slot
        f, sb = make_sb(CHAIN4)
        n, reassoc = vectorize_superblock(sb, MachineConfig(issue_width=8),
                                          {fp_reg(20)})
        assert (n, reassoc) == (1, 1)
        text = format_function(f)
        assert "r1vf = vpackf.4(r20f, 0.0, 0.0, 0.0)" in text
        assert "r20f = r21f + r22f" in text
        verify_function(f)

    def test_serial_chain_semantics(self):
        f, sb = make_sb(CHAIN4)
        vectorize_superblock(sb, MachineConfig(issue_width=8), {fp_reg(20)})
        n = 24
        mem = Memory()
        A = np.arange(1.0, n + 1)
        mem.bind_array("A", A)
        res = simulate(f, unlimited(), mem, iregs={1: 0, 9: 4 * n},
                       fregs={20: 0.0})
        # integer-valued doubles: the re-associated sum is still exact
        assert res.fregs[20] == A.sum()

    def test_dead_self_updates_are_not_packed(self):
        # a self-increment that is live around the backedge but never
        # read after the loop is not a reduction; packing it would emit
        # pure overhead (and, historically, did)
        f, sb = make_sb(CHAIN4)
        # live_out_exit empty: r20f is dead after the loop
        assert vectorize_superblock(sb, MachineConfig(issue_width=8),
                                    set()) == (0, 0)


class TestPipelineIntegration:
    @pytest.mark.parametrize("name", ["add", "dotprod", "SDS-4"])
    def test_disable_slp_reduces_lev5_to_lev4(self, name):
        w = get_workload(name)
        machine = MachineConfig(issue_width=8)
        lev5_off = compile_kernel(w.build(), Level.LEV5, machine,
                                  options=PassOptions(disable=("slp",)))
        lev4 = compile_kernel(w.build(), Level.LEV4, machine)
        assert format_function(lev5_off.func) == format_function(lev4.func)

    def test_lev5_add_vectorizes_and_stays_exact(self):
        w = get_workload("add")
        ck = compile_kernel(w.build(), Level.LEV5,
                            MachineConfig(issue_width=8), check=True)
        assert ck.report.slp > 0
        assert ck.report.slp_reassoc == 0
        arrays, scalars = w.make_inputs(0)
        run = run_compiled_kernel(ck, arrays=arrays, scalars=scalars)
        check_run(w, run.arrays, run.scalars, arrays, scalars)

    def test_dotprod_reassoc_regression(self):
        # with accumulate disabled the dot-product reduction reaches the
        # packer as a serial chain: the reassociating variant must fire,
        # be reported (so the oracle relaxes to the workload tolerance),
        # and still produce a result within that tolerance
        w = get_workload("dotprod")
        ck = compile_kernel(
            w.build(), Level.LEV5, MachineConfig(issue_width=8),
            check=True, options=PassOptions(disable=("accumulate",)),
        )
        assert ck.report.slp_reassoc > 0
        arrays, scalars = w.make_inputs(0)
        run = run_compiled_kernel(ck, arrays=arrays, scalars=scalars)
        check_run(w, run.arrays, run.scalars, arrays, scalars)

    def test_report_forks_carry_reassoc_count(self):
        w = get_workload("dotprod")
        ck = compile_kernel(
            w.build(), Level.LEV5, MachineConfig(issue_width=8),
            options=PassOptions(disable=("accumulate",)),
        )
        assert ck.report.fork().slp_reassoc == ck.report.slp_reassoc
