"""Differential tests between the two simulator engines.

The block-compiled trace/replay core (``engine="compiled"``) must be
observationally identical to the reference interpreter
(``engine="interp"``): same cycles, same instruction counts, same end
state, and the same ``SimulationError`` diagnostics — the fast engine
is only admissible because no caller can tell it ran.

Three layers of evidence:

* an engine-vs-engine matrix over nine oracle kernels x all five
  transformation levels x four issue widths;
* the width-batched path (execute once, replay timing per width —
  :class:`repro.harness.BatchedRunner`) against independent full
  simulations of every width;
* error-semantics parity: reads of never-written registers, division
  by zero, and unmapped memory must raise the same exception type with
  the same message from generated block code as from the interpreter —
  never a ``NameError``/``IndexError`` leaking codegen internals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness import (
    BatchedRunner,
    ilp_transform,
    lower_conv,
    run_compiled_kernel,
    schedule_kernel,
)
from repro.ir import parse_function
from repro.ir.instructions import Kind
from repro.machine import MachineConfig, unlimited
from repro.pipeline import ALL_LEVELS, Level
from repro.sim import Memory, SimMemoryError, SimulationError, simulate
from repro.workloads import get_workload

ORACLE_KERNELS = (
    "add", "sum", "dotprod", "maxval", "merge",
    "LWS-1", "NAS-4", "SRS-1", "TFS-2",
)
WIDTHS = (1, 2, 4, 8)


def _assert_runs_equal(a, b, ctx=""):
    assert a.cycles == b.cycles, f"{ctx}: cycles {a.cycles} != {b.cycles}"
    assert a.instructions == b.instructions, (
        f"{ctx}: instructions {a.instructions} != {b.instructions}"
    )
    assert set(a.arrays) == set(b.arrays), ctx
    for name in a.arrays:
        assert np.array_equal(
            np.asarray(a.arrays[name]), np.asarray(b.arrays[name])
        ), f"{ctx}: array {name} differs"
    assert a.scalars == b.scalars, f"{ctx}: scalars differ"


class TestEngineMatrix:
    """interpreter vs compiled-block engine across the oracle corpus."""

    @pytest.mark.parametrize("name", ORACLE_KERNELS)
    def test_engines_identical(self, name):
        w = get_workload(name)
        arrays, scalars = w.make_inputs(0)
        conv = lower_conv(w.build())
        for level in ALL_LEVELS:
            tk = ilp_transform(conv.clone(), level, MachineConfig(issue_width=1))
            for width in WIDTHS:
                ck = schedule_kernel(tk.clone(), MachineConfig(issue_width=width))
                interp = run_compiled_kernel(
                    ck, arrays=arrays, scalars=scalars, engine="interp"
                )
                compiled = run_compiled_kernel(
                    ck, arrays=arrays, scalars=scalars, engine="compiled"
                )
                _assert_runs_equal(
                    interp, compiled, f"{name}/{level.label}/w{width}"
                )


class TestBatchedReplayVsFullSim:
    """execute-once / replay-per-width vs independent full simulations."""

    @pytest.mark.parametrize("name", ["dotprod", "maxval", "NAS-4", "TFS-2"])
    def test_batched_identical(self, name):
        w = get_workload(name)
        arrays, scalars = w.make_inputs(0)
        conv = lower_conv(w.build())
        for level in (Level.CONV, Level.LEV2, Level.LEV4):
            tk = ilp_transform(conv.clone(), level, MachineConfig(issue_width=1))
            cks = [
                schedule_kernel(tk.clone(), MachineConfig(issue_width=width))
                for width in WIDTHS
            ]
            runner = BatchedRunner(cks[0], arrays, scalars)
            for ck, width in zip(cks, WIDTHS):
                got = runner.run(ck)
                assert not runner.last_fallback, (
                    f"{name}/{level.label}/w{width} unexpectedly fell back"
                )
                want = run_compiled_kernel(
                    ck, arrays=arrays, scalars=scalars, engine="interp"
                )
                _assert_runs_equal(got, want, f"{name}/{level.label}/w{width}")

    def test_batched_falls_back_on_foreign_schedule(self):
        # a kernel transformed separately shares no instruction objects,
        # so its exits cannot be mapped onto the trace: the runner must
        # fall back to a full simulation, not crash or mis-time
        w = get_workload("dotprod")
        arrays, scalars = w.make_inputs(0)
        conv = lower_conv(w.build())
        tk1 = ilp_transform(conv.clone(), Level.LEV4, MachineConfig(issue_width=1))
        tk2 = ilp_transform(conv.clone(), Level.LEV4, MachineConfig(issue_width=1))
        ck1 = schedule_kernel(tk1, MachineConfig(issue_width=1))
        ck2 = schedule_kernel(tk2, MachineConfig(issue_width=8))
        runner = BatchedRunner(ck1, arrays, scalars)
        got = runner.run(ck2)
        assert runner.last_fallback
        want = run_compiled_kernel(
            ck2, arrays=arrays, scalars=scalars, engine="interp"
        )
        _assert_runs_equal(got, want, "foreign schedule fallback")

    def test_batched_falls_back_on_slot_limits(self):
        # slot-limited machines have no replay model; the batched path
        # must degrade to full simulation with identical results
        w = get_workload("sum")
        arrays, scalars = w.make_inputs(0)
        conv = lower_conv(w.build())
        tk = ilp_transform(conv.clone(), Level.LEV2, MachineConfig(issue_width=1))
        base = schedule_kernel(tk.clone(), MachineConfig(issue_width=1))
        limited_machine = MachineConfig(issue_width=4, slot_limits={Kind.LOAD: 1})
        limited = schedule_kernel(tk.clone(), limited_machine)
        runner = BatchedRunner(base, arrays, scalars)
        got = runner.run(limited)
        assert runner.last_fallback
        want = run_compiled_kernel(
            limited, arrays=arrays, scalars=scalars, engine="interp"
        )
        _assert_runs_equal(got, want, "slot-limit fallback")


def _run_both(text, machine=None, mem_fn=None, iregs=None, fregs=None, **kw):
    """Run one assembly function under both engines; returns (interp,
    compiled) results or raises after asserting error parity."""
    f = parse_function(text)
    machine = machine or unlimited()

    def one(engine):
        mem = mem_fn() if mem_fn else Memory()
        return simulate(f, machine, mem, dict(iregs or {}), dict(fregs or {}),
                        engine=engine, **kw)

    return one("interp"), one("compiled")


def _error_both(text, exc_type, machine=None, mem_fn=None, iregs=None,
                fregs=None, **kw):
    """Assert both engines raise ``exc_type`` with the same message;
    returns that message."""
    f = parse_function(text)
    machine = machine or unlimited()
    msgs = []
    for engine in ("interp", "compiled"):
        mem = mem_fn() if mem_fn else Memory()
        with pytest.raises(exc_type) as ei:
            simulate(f, machine, mem, dict(iregs or {}), dict(fregs or {}),
                     engine=engine, **kw)
        msgs.append(str(ei.value))
    assert msgs[0] == msgs[1], f"messages diverge: {msgs[0]!r} vs {msgs[1]!r}"
    return msgs[0]


class TestErrorParity:
    """The compiled engine must surface interpreter-identical errors.

    Regression for the uninitialized-register class of bugs: generated
    block code binds registers to local variables, so a never-written
    register must be detected and reported as a ``SimulationError`` —
    not escape as a ``NameError``/``TypeError`` from the generated
    function's internals.
    """

    def test_uninit_alu_operand(self):
        msg = _error_both(
            "function t:\nA:\n  r3i = r1i + r2i\n  halt\n", SimulationError,
            iregs={1: 4},
        )
        assert "uninitialized register" in msg

    def test_uninit_branch_operand(self):
        msg = _error_both(
            "function t:\nA:\n  blt (r1i r2i) T\n  halt\nT:\n  halt\n",
            SimulationError, iregs={1: 1},
        )
        assert "uninitialized register" in msg

    def test_uninit_equality_branch_operand(self):
        # == / != accept None silently in Python, so the generated code
        # carries an explicit guard for them — cover it separately
        msg = _error_both(
            "function t:\nA:\n  beq (r1i r2i) T\n  halt\nT:\n  halt\n",
            SimulationError, iregs={1: 1},
        )
        assert "uninitialized register" in msg

    def test_uninit_store_value(self):
        msg = _error_both(
            "function t:\nA:\n  MEM(A+0) = r9f\n  halt\n",
            SimulationError,
            mem_fn=_one_slot_memory,
        )
        assert "uninitialized register" in msg

    def test_uninit_store_address(self):
        msg = _error_both(
            "function t:\nA:\n  MEM(r9i+0) = r1i\n  halt\n",
            SimulationError, iregs={1: 7},
        )
        assert "uninitialized register" in msg

    def test_uninit_load_address(self):
        msg = _error_both(
            "function t:\nA:\n  r1f = MEM(r9i+0)\n  halt\n",
            SimulationError,
        )
        assert "uninitialized register" in msg

    def test_division_by_zero(self):
        msg = _error_both(
            "function t:\nA:\n  r3i = r1i / r2i\n  halt\n",
            SimulationError, iregs={1: 1, 2: 0},
        )
        assert "division by zero" in msg

    def test_unmapped_load(self):
        _error_both(
            "function t:\nA:\n  r1f = MEM(r2i+0)\n  halt\n",
            SimMemoryError, iregs={2: 0x4000},
        )

    def test_runaway_loop(self):
        msg = _error_both(
            "function t:\nA:\n  jmp A\n", SimulationError, max_cycles=500,
        )
        assert "exceeded 500 cycles" in msg

    def test_healthy_program_identical(self):
        interp, compiled = _run_both(
            """
function t:
A:
  r1i = 0
L:
  r1i = r1i + 1
  blt (r1i 10) L
""",
        )
        assert interp.cycles == compiled.cycles
        assert interp.instructions == compiled.instructions
        assert interp.iregs == compiled.iregs


def _one_slot_memory():
    m = Memory()
    m.bind_array("A", np.zeros(4))
    return m
