"""Unit tests for the kernel language: AST building, typing, lowering."""

import numpy as np
import pytest

from repro.frontend import (
    ArrayDecl,
    Kernel,
    Ty,
    TypeError_,
    aref,
    assign,
    check_kernel,
    do,
    flt,
    if_,
    lower_kernel,
    var,
)
from repro.harness import compile_kernel, run_compiled_kernel
from repro.machine import unlimited
from repro.pipeline import Level
from repro.sim import Memory, simulate


def simple_kernel(n=8, kind="doall"):
    i = var("i")
    return Kernel(
        "k",
        arrays={x: ArrayDecl(Ty.FP, (n,)) for x in "AB"},
        scalars={"q": Ty.FP},
        body=[do("i", 1, n, [assign(aref("B", i), aref("A", i) * var("q"))], kind=kind)],
    )


class TestTyping:
    def test_valid_kernel_checks(self):
        check_kernel(simple_kernel())

    def test_undeclared_scalar(self):
        k = simple_kernel()
        k.body[0].body[0] = assign(aref("B", var("i")), var("zz"))
        with pytest.raises(TypeError_):
            check_kernel(k)

    def test_undeclared_array(self):
        i = var("i")
        k = Kernel("k", arrays={}, scalars={},
                   body=[do("i", 1, 4, [assign(aref("Q", i), 1.0)])])
        with pytest.raises(TypeError_):
            check_kernel(k)

    def test_subscript_count_checked(self):
        i = var("i")
        k = Kernel("k", arrays={"A": ArrayDecl(Ty.FP, (4, 4))}, scalars={},
                   body=[do("i", 1, 4, [assign(aref("A", i), 1.0)])])
        with pytest.raises(TypeError_):
            check_kernel(k)

    def test_fp_subscript_rejected(self):
        k = Kernel("k", arrays={"A": ArrayDecl(Ty.FP, (4,))},
                   scalars={"x": Ty.FP},
                   body=[do("i", 1, 4, [assign(aref("A", var("x")), 1.0)])])
        with pytest.raises(TypeError_):
            check_kernel(k)

    def test_fp_to_int_assignment_rejected(self):
        k = Kernel("k", arrays={}, scalars={"n": Ty.INT, "x": Ty.FP},
                   body=[do("i", 1, 4, [assign(var("n"), var("x"))])])
        with pytest.raises(TypeError_):
            check_kernel(k)

    def test_promotion_int_to_fp(self):
        i = var("i")
        k = Kernel("k", arrays={"A": ArrayDecl(Ty.FP, (4,))}, scalars={},
                   body=[do("i", 1, 4, [assign(aref("A", i), flt(i) * 2.0)])])
        check_kernel(k)

    def test_outputs_must_be_scalars(self):
        k = simple_kernel()
        k.outputs = ["nope"]
        with pytest.raises(TypeError_):
            check_kernel(k)

    def test_nest_depth(self):
        i, j = var("i"), var("j")
        k = Kernel("k", arrays={"A": ArrayDecl(Ty.FP, (4, 4))}, scalars={},
                   body=[do("j", 1, 4, [do("i", 1, 4,
                        [assign(aref("A", i, j), 1.0)])])])
        assert k.nest_depth() == 2
        assert k.inner_do().var == "i"


class TestLowering:
    def test_lowered_kernel_verifies_and_runs(self):
        lk = lower_kernel(simple_kernel())
        mem = Memory()
        A = np.arange(1.0, 9.0)
        mem.bind_array("A", A)
        mem.bind_array("B", np.zeros(8))
        q = lk.scalar_regs["q"]
        simulate(lk.func, unlimited(), mem, fregs={q.id: 2.0})
        assert np.array_equal(mem.read_array("B", (8,)), A * 2.0)

    def test_counted_loop_metadata(self):
        lk = lower_kernel(simple_kernel())
        c = lk.counted[lk.inner_header]
        assert c.step == 1
        assert c.header == lk.inner_header

    def test_inner_kind_propagated(self):
        assert lower_kernel(simple_kernel(kind="doall")).inner_kind == "doall"
        assert lower_kernel(simple_kernel(kind="serial")).inner_kind == "serial"

    def test_column_major_2d_addressing(self):
        i, j = var("i"), var("j")
        k = Kernel(
            "k",
            arrays={"A": ArrayDecl(Ty.FP, (3, 2)), "B": ArrayDecl(Ty.FP, (3, 2))},
            scalars={},
            body=[do("j", 1, 2, [do("i", 1, 3,
                    [assign(aref("B", i, j), aref("A", i, j) + 1.0)])])],
        )
        lk = lower_kernel(k)
        mem = Memory()
        A = np.arange(1.0, 7.0).reshape((3, 2), order="F")
        mem.bind_array("A", A)
        mem.bind_array("B", np.zeros((3, 2)))
        simulate(lk.func, unlimited(), mem)
        assert np.array_equal(mem.read_array("B", (3, 2)), A + 1.0)

    def test_constant_subscripts_fold(self):
        k = Kernel(
            "k",
            arrays={"A": ArrayDecl(Ty.FP, (4,))},
            scalars={"x": Ty.FP},
            outputs=["x"],
            body=[do("i", 1, 2, [assign(var("x"), aref("A", 3))])],
        )
        lk = lower_kernel(k)
        mem = Memory()
        mem.bind_array("A", np.array([1.0, 2.0, 3.0, 4.0]))
        res = simulate(lk.func, unlimited(), mem)
        assert res.fregs[lk.scalar_regs["x"].id] == 3.0

    def test_if_else_lowering(self):
        i = var("i")
        k = Kernel(
            "k",
            arrays={"A": ArrayDecl(Ty.FP, (6,)), "B": ArrayDecl(Ty.FP, (6,))},
            scalars={},
            body=[do("i", 1, 6, [
                if_(aref("A", i) > 3.0,
                    [assign(aref("B", i), 1.0)],
                    [assign(aref("B", i), -1.0)])])],
        )
        lk = lower_kernel(k)
        mem = Memory()
        A = np.array([1.0, 5.0, 2.0, 9.0, 3.0, 4.0])
        mem.bind_array("A", A)
        mem.bind_array("B", np.zeros(6))
        simulate(lk.func, unlimited(), mem)
        assert np.array_equal(mem.read_array("B", (6,)), np.where(A > 3.0, 1.0, -1.0))

    def test_neg_and_mod(self):
        k = Kernel(
            "k",
            arrays={},
            scalars={"a": Ty.INT, "b": Ty.INT, "c": Ty.INT, "d": Ty.FP},
            outputs=["c", "d"],
            body=[do("i", 1, 2, [
                assign(var("c"), var("a") % var("b")),
                assign(var("d"), -flt(var("a"))),
            ])],
        )
        lk = lower_kernel(k)
        res = simulate(
            lk.func, unlimited(), Memory(),
            iregs={lk.scalar_regs["a"].id: 17, lk.scalar_regs["b"].id: 5},
        )
        assert res.iregs[lk.scalar_regs["c"].id] == 2
        assert res.fregs[lk.scalar_regs["d"].id] == -17.0


class TestHarness:
    def test_run_compiled_kernel_outputs(self):
        k = simple_kernel()
        ck = compile_kernel(k, Level.CONV, unlimited())
        A = np.arange(1.0, 9.0)
        out = run_compiled_kernel(ck, arrays={"A": A, "B": np.zeros(8)},
                                  scalars={"q": 3.0})
        assert np.array_equal(out.arrays["B"], A * 3.0)
        assert out.cycles > 0 and out.ipc > 0

    def test_missing_array_rejected(self):
        ck = compile_kernel(simple_kernel(), Level.CONV, unlimited())
        with pytest.raises(ValueError):
            run_compiled_kernel(ck, arrays={"A": np.zeros(8)})

    def test_wrong_size_rejected(self):
        ck = compile_kernel(simple_kernel(), Level.CONV, unlimited())
        with pytest.raises(ValueError):
            run_compiled_kernel(ck, arrays={"A": np.zeros(4), "B": np.zeros(8)})
