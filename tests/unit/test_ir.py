"""Unit tests for the IR: operands, instructions, blocks, functions,
printer/parser round-trips, and the verifier."""

import pytest

from repro.ir import (
    Block,
    FImm,
    Function,
    FunctionBuilder,
    Imm,
    Instr,
    Kind,
    Label,
    Op,
    OP_INFO,
    ParseError,
    Reg,
    RegClass,
    Sym,
    VerifyError,
    format_function,
    format_instr,
    fp_reg,
    int_reg,
    make,
    parse_function,
    parse_instr,
    parse_operand,
    remove_unreachable,
    verify_function,
    verify_instr,
)


class TestOperands:
    def test_reg_identity(self):
        assert Reg(1, RegClass.INT) == int_reg(1)
        assert int_reg(1) != fp_reg(1)
        assert {int_reg(1), int_reg(1)} == {int_reg(1)}

    def test_reg_rendering(self):
        assert str(int_reg(3)) == "r3i"
        assert str(fp_reg(12)) == "r12f"

    def test_class_predicates(self):
        assert int_reg(1).is_int and not int_reg(1).is_fp
        assert fp_reg(1).is_fp and not fp_reg(1).is_int

    def test_immediates(self):
        assert str(Imm(-4)) == "-4"
        assert str(FImm(3.2)) == "3.2"
        assert Imm(4) != FImm(4.0)

    def test_sym_and_label(self):
        assert str(Sym("A")) == "A"
        assert str(Label("L1")) == "L1"


class TestInstr:
    def test_make_checks_arity(self):
        with pytest.raises(ValueError):
            make(Op.ADD, int_reg(1), (Imm(1),))
        with pytest.raises(ValueError):
            make(Op.ADD, None, (Imm(1), Imm(2)))
        with pytest.raises(ValueError):
            make(Op.BLT, None, (Imm(1), Imm(2)))  # no target

    def test_defs_and_uses(self):
        ins = make(Op.ADD, int_reg(1), (int_reg(2), Imm(4)))
        assert list(ins.reg_defs()) == [int_reg(1)]
        assert list(ins.reg_uses()) == [int_reg(2)]

    def test_replace_uses(self):
        ins = make(Op.FADD, fp_reg(1), (fp_reg(2), fp_reg(3)))
        ins.replace_uses({fp_reg(2): fp_reg(9)})
        assert ins.srcs == (fp_reg(9), fp_reg(3))

    def test_copy_is_fresh_but_identical(self):
        ins = make(Op.LD, int_reg(1), (Sym("A"), Imm(0)))
        ins.tag = 3
        ins.prob = 0.25
        c = ins.copy()
        assert c is not ins and c.uid != ins.uid
        assert (c.op, c.dest, c.srcs, c.tag, c.prob) == (
            ins.op, ins.dest, ins.srcs, 3, 0.25
        )

    def test_structural_predicates(self):
        st = make(Op.STF, None, (Sym("A"), Imm(0), fp_reg(1)))
        assert st.is_store and st.is_mem and not st.is_load
        br = make(Op.BLT, None, (int_reg(1), Imm(5)), Label("L"))
        assert br.is_branch and br.is_control
        halt = Instr(Op.HALT)
        assert halt.is_control and not halt.is_branch
        assert make(Op.DIV, int_reg(1), (int_reg(2), int_reg(3))).may_trap

    def test_every_opcode_has_info(self):
        for op in Op:
            assert op in OP_INFO


class TestPrinterParser:
    CASES = [
        "r2f = MEM(A+r1i)",
        "r2i = MEM(r1i+8)",
        "r4i = MEM(r1i-8)",
        "MEM(C+r1i) = r4f",
        "MEM(B) = r2i",
        "r4f = r2f + r3f",
        "r1i = r1i + 4",
        "r3i = r2i >> 2",
        "r3i = r2i >>> 2",
        "r1i = r2i",
        "r5f = 3.2",
        "r1f = itof(r2i)",
        "r2i = ftoi(r1f)",
        "blt (r1i r5i) L1",
        "fbge (r1f 13.2) L2",
        "jmp exit",
        "halt",
        "nop",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_round_trip(self, text):
        ins = parse_instr(text)
        assert format_instr(ins) == text
        again = parse_instr(format_instr(ins))
        assert format_instr(again) == text

    def test_binop_selected_by_dest_class(self):
        assert parse_instr("r1i = r2i + r3i").op is Op.ADD
        assert parse_instr("r1f = r2f + r3f").op is Op.FADD

    def test_negative_immediates(self):
        ins = parse_instr("r1i = r2i + -4")
        assert ins.srcs[1] == Imm(-4)

    def test_parse_operand_kinds(self):
        assert parse_operand("r3i") == int_reg(3)
        assert parse_operand("r3f") == fp_reg(3)
        assert parse_operand("-7") == Imm(-7)
        assert parse_operand("2.5") == FImm(2.5)
        assert parse_operand("ABC") == Sym("ABC")

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_instr("r1i = r2f ?? r3f")
        with pytest.raises(ParseError):
            parse_instr("??")

    def test_function_round_trip(self):
        text = """function t:
entry:
  r1i = 0
L1:
  r2f = MEM(A+r1i)
  MEM(B+r1i) = r2f
  r1i = r1i + 4
  blt (r1i r5i) L1
exit:
  halt"""
        f = parse_function(text)
        assert format_function(f) == text


class TestFunction:
    def test_successors_and_predecessors(self):
        f = parse_function(
            """
function t:
A:
  blt (r1i r2i) C
B:
  jmp D
C:
  nop
D:
  halt
"""
        )
        bm = f.block_map()
        assert f.successors(bm["A"]) == ["C", "B"]
        assert f.successors(bm["B"]) == ["D"]
        assert f.successors(bm["C"]) == ["D"]
        preds = f.predecessors()
        assert sorted(preds["D"]) == ["B", "C"]

    def test_halt_stops_fallthrough(self):
        f = parse_function("function t:\nA:\n  halt\nB:\n  nop\n")
        assert f.successors(f.get_block("A")) == []

    def test_new_reg_is_fresh(self):
        f = parse_function("function t:\nA:\n  r7i = r3i + 1\n")
        r = f.new_int_reg()
        assert r.id > 7

    def test_retarget(self):
        f = parse_function("function t:\nA:\n  jmp B\nB:\n  halt\nC:\n  halt\n")
        f.retarget("B", "C")
        assert f.get_block("A").instrs[0].target.name == "C"

    def test_remove_unreachable(self):
        f = parse_function(
            "function t:\nA:\n  jmp C\nB:\n  nop\nC:\n  halt\n"
        )
        assert remove_unreachable(f) == 1
        assert [b.label for b in f.blocks] == ["A", "C"]

    def test_duplicate_label_rejected(self):
        f = Function("t")
        f.add_block("A")
        with pytest.raises(ValueError):
            f.add_block("A")


class TestVerifier:
    def test_wrong_operand_class(self):
        ins = Instr(Op.FADD, fp_reg(1), (fp_reg(2), int_reg(3)))
        with pytest.raises(VerifyError):
            verify_instr(ins)

    def test_missing_target(self):
        ins = Instr(Op.BLT, srcs=(int_reg(1), int_reg(2)))
        with pytest.raises(VerifyError):
            verify_instr(ins)

    def test_unknown_target_label(self):
        f = parse_function("function t:\nA:\n  jmp Z\n")
        with pytest.raises(VerifyError):
            verify_function(f)

    def test_jump_must_terminate_block(self):
        f = Function("t")
        b = f.add_block("A")
        b.append(Instr(Op.JMP, target=Label("A")))
        b.append(Instr(Op.NOP))
        with pytest.raises(VerifyError):
            verify_function(f)

    def test_duplicate_instruction_object(self):
        f = Function("t")
        b = f.add_block("A")
        ins = Instr(Op.NOP)
        b.append(ins)
        b.append(ins)
        with pytest.raises(VerifyError):
            verify_function(f)


class TestBuilder:
    def test_simple_loop_builds_and_verifies(self):
        fb = FunctionBuilder("t")
        fb.block("entry")
        i = fb.mov(0)
        fb.block("L1")
        x = fb.ldf("A", i)
        y = fb.fmul(x, 2.0)
        fb.stf("B", i, y)
        fb.add(i, 4, dest=i)
        fb.blt(i, 40, "L1")
        fb.block("exit")
        fb.nop()
        f = fb.build()
        assert f.n_instrs() == 7

    def test_dest_class_checked(self):
        fb = FunctionBuilder("t")
        fb.block("entry")
        with pytest.raises(ValueError):
            fb.add(1, 2, dest=fp_reg(1))
