"""Unit tests for the software-pipelining (modulo scheduling) bounds."""

import pytest

from repro.ir import parse_block
from repro.machine import MachineConfig, issue8, unlimited
from repro.schedule.pipelining import compute_bounds


def body_of(text):
    return parse_block(text).instrs


class TestResMII:
    def test_width_bound(self):
        body = body_of("\n".join(f"r{k}i = 1" for k in range(1, 17)))
        assert compute_bounds(body, MachineConfig(issue_width=8)).res_mii == 2
        assert compute_bounds(body, MachineConfig(issue_width=4)).res_mii == 4

    def test_branch_slot_bound(self):
        body = body_of(
            "blt (r1i r2i) A\nblt (r3i r4i) B\nblt (r5i r6i) C\n"
        )
        b = compute_bounds(body, issue8())
        assert b.res_mii == 3  # one branch per cycle


class TestRecMII:
    def test_accumulator_chain(self):
        # two chained fadds carried around the loop: 6 cycles per pass
        body = body_of(
            "r1f = r1f + r2f\nr1f = r1f + r3f\nblt (r4i r5i) L\n"
        )
        b = compute_bounds(body, unlimited())
        assert b.rec_mii == 6

    def test_expanded_accumulators_break_chain(self):
        body = body_of(
            "r1f = r1f + r3f\nr2f = r2f + r4f\nblt (r5i r6i) L\n"
        )
        b = compute_bounds(body, unlimited())
        assert b.rec_mii == 3  # each temp's own 3-cycle self-dependence

    def test_induction_chain(self):
        body = body_of("r1i = r1i + 4\nblt (r1i r5i) L\n")
        b = compute_bounds(body, unlimited())
        assert b.rec_mii == 1

    def test_memory_recurrence_distance_one(self):
        # A(i) = A(i-1)*q: store at p*adv, load at p*adv - 4, adv 4
        body = body_of(
            """
            r2f = MEM(A+r3i)
            r4f = r2f * r5f
            MEM(A+r6i) = r4f
            r3i = r3i + 4
            r6i = r6i + 4
            blt (r6i r9i) L
            """
        )
        prologue = body_of("r6i = r3i + 4\n")
        b = compute_bounds(body, unlimited(), prologue=prologue)
        # load(2) + fmul(3) + store(1) around a distance-1 cycle
        assert b.rec_mii == 6

    def test_memory_distance_two_halves_bound(self):
        # A(i+2) = A(i)*q: same chain but distance 2
        body = body_of(
            """
            r2f = MEM(A+r3i)
            r4f = r2f * r5f
            MEM(A+r6i) = r4f
            r3i = r3i + 4
            r6i = r6i + 4
            blt (r6i r9i) L
            """
        )
        prologue = body_of("r6i = r3i + 8\n")
        b = compute_bounds(body, unlimited(), prologue=prologue)
        assert b.rec_mii == 3  # ceil(6 / 2)

    def test_doall_suppresses_memory_recurrence(self):
        body = body_of(
            """
            r2f = MEM(A+r3i)
            MEM(B+r3i) = r2f
            r3i = r3i + 4
            blt (r3i r9i) L
            """
        )
        b = compute_bounds(body, unlimited(), doall=True)
        # no memory recurrence, but the *address* chain still binds: the
        # increment waits for the store (anti), the next load waits for the
        # increment — load(2) + anti(0) + inc(1) = 3.  This is precisely the
        # recurrence induction variable expansion removes:
        assert b.rec_mii == 3
        expanded = body_of(
            """
            r2f = MEM(A+r3i)
            MEM(B+r6i) = r2f
            r3i = r3i + 4
            r6i = r6i + 4
            blt (r3i r9i) L
            """
        )
        b2 = compute_bounds(expanded, unlimited(), doall=True,
                            prologue=body_of("r6i = r3i\n"))
        # separate load/store pointers: the load's latency no longer sits on
        # any cycle (address reads happen at issue), so the bound collapses
        assert b2.rec_mii == 1

    def test_no_cycles_means_unit_recmii(self):
        body = body_of("r1f = r2f + r3f\nr4f = r1f * r5f\n")
        assert compute_bounds(body, unlimited()).rec_mii == 1


class TestMII:
    def test_mii_is_max(self):
        body = body_of(
            "r1f = r1f + r2f\nr1f = r1f + r3f\nblt (r4i r5i) L\n"
        )
        b = compute_bounds(body, MachineConfig(issue_width=1))
        assert b.mii == max(b.res_mii, b.rec_mii)

    def test_per_iteration_scaling(self):
        body = body_of("r1f = r1f + r2f\nblt (r4i r5i) L\n")
        b = compute_bounds(body, unlimited(), iterations=4)
        assert b.mii_per_iteration == pytest.approx(b.mii / 4)
