"""Unit tests for superblock formation and list scheduling."""

import numpy as np
import pytest

from repro.analysis.depgraph import build_depgraph
from repro.ir import Op, int_reg, parse_block, parse_function
from repro.ir.loop import find_loops
from repro.machine import MachineConfig, issue1, issue2, unlimited
from repro.schedule.listsched import list_schedule
from repro.schedule.superblock import (
    FormationError,
    form_superblock,
    select_trace,
)
from repro.sim import Memory, simulate


class TestListSchedule:
    def test_respects_all_dependences(self):
        body = parse_block(
            """
            r1f = MEM(A+r2i)
            r3f = r1f * r4f
            MEM(B+r2i) = r3f
            r2i = r2i + 4
            blt (r2i r5i) L
            """
        ).instrs
        g = build_depgraph(body, unlimited())
        s = list_schedule(body, unlimited(), depgraph=g)
        pos = {id(ins): k for k, ins in enumerate(s.order)}
        times = {id(ins): t for ins, t in s.pairs()}
        for i in range(len(body)):
            for j, w in g.succs[i]:
                assert pos[id(body[i])] < pos[id(body[j])]
                assert times[id(body[j])] >= times[id(body[i])] + w

    def test_issue_times_nondecreasing(self):
        body = parse_block(
            "r1i = r2i + 1\nr3i = r1i + 1\nr4i = r2i + 2\nr5i = r4i * r3i\n"
        ).instrs
        for width in (1, 2, 4, 0):
            s = list_schedule(body, MachineConfig(issue_width=width))
            assert s.issue == sorted(s.issue)

    def test_width_one_is_serial(self):
        body = parse_block("\n".join(f"r{k}i = 1" for k in range(1, 6))).instrs
        s = list_schedule(body, issue1())
        assert s.issue == list(range(5))

    def test_branch_closes_packet(self):
        body = parse_block(
            "blt (r1i r2i) X\nr3i = 1\n"
        ).instrs
        s = list_schedule(body, unlimited(), exit_live={0: {int_reg(3)}})
        # r3i write is live at the exit: cannot speculate above the branch
        times = dict(s.pairs())
        br = body[0]
        mov = body[1]
        assert times[mov] >= times[br] + 1

    def test_speculation_fills_packet(self):
        body = parse_block(
            "blt (r1i r2i) X\nr3f = MEM(A+r1i)\n"
        ).instrs
        s = list_schedule(body, unlimited(), exit_live={0: set()})
        times = dict(s.pairs())
        assert times[body[1]] == 0  # load speculated into the first cycle

    def test_critical_path_prioritized(self):
        # a long chain and an independent cheap op competing at width 1:
        # the chain head must go first
        body = parse_block(
            """
            r1f = r2f * r3f
            r4f = r1f * r5f
            r6f = r4f * r7f
            r8i = 1
            """
        ).instrs
        s = list_schedule(body, issue1())
        assert s.order[0] is body[0]

    def test_empty_region(self):
        s = list_schedule([], unlimited())
        assert s.makespan == 0


class TestSuperblockFormation:
    def single_loop(self):
        return parse_function(
            """
function t:
entry:
L:
  r2f = MEM(A+r1i)
  MEM(B+r1i) = r2f
  r1i = r1i + 4
  blt (r1i r5i) L
exit:
  halt
"""
        )

    def test_single_block_loop(self):
        f = self.single_loop()
        loop = next(l for l in find_loops(f) if l.header == "L")
        sb = form_superblock(f, loop)
        assert sb.body.label == "L"
        assert sb.offtrace == set()
        assert sb.backedge.target.name == "L"
        assert sb.exit_block is not None

    def test_triangle_tail_duplication(self):
        f = parse_function(
            """
function t:
entry:
L:
  r2f = MEM(A+r1i)
  fble (r2f r3f) J
T:
  r3f = r2f
J:
  r1i = r1i + 4
  blt (r1i r5i) L
exit:
  halt
"""
        )
        loop = next(l for l in find_loops(f) if l.header == "L")
        sb = form_superblock(f, loop)
        # the skip branch became a side exit into a duplicated tail
        exits = sb.side_exit_positions()
        assert len(exits) == 1
        tgt = sb.body.instrs[exits[0]].target.name
        assert tgt in sb.offtrace
        # the duplicated tail finishes the iteration and rejoins the header
        dup = f.get_block(tgt)
        labels_seen = set()
        cur = dup
        for _ in range(10):
            labels_seen.add(cur.label)
            t = cur.terminator
            if t is not None and t.target is not None and t.target.name == "L":
                break
            nxt = f.successors(cur)
            cur = f.get_block(nxt[0])
        else:
            pytest.fail("off-trace path never rejoins the header")

    def test_diamond_likely_arm_in_trace(self):
        src = """
function t:
entry:
L:
  r2f = MEM(A+r1i)
  fbge (r2f r3f) E
T:
  MEM(B+r1i) = r2f
  jmp J
E:
  MEM(C+r1i) = r2f
J:
  r1i = r1i + 4
  blt (r1i r5i) L
exit:
  halt
"""
        f = parse_function(src)
        f.get_block("L").instrs[1].prob = 0.2  # likely fall-through (T)
        loop = next(l for l in find_loops(f) if l.header == "L")
        trace = select_trace(f, loop)
        assert trace == ["L", "T", "J"]

        f2 = parse_function(src)
        f2.get_block("L").instrs[1].prob = 0.8  # likely taken (E)
        loop2 = next(l for l in find_loops(f2) if l.header == "L")
        assert select_trace(f2, loop2) == ["L", "E", "J"]

    def test_formation_preserves_semantics(self):
        f = parse_function(
            """
function t:
entry:
L:
  r2f = MEM(A+r1i)
  fble (r2f r3f) J
T:
  r3f = r2f
J:
  r1i = r1i + 4
  blt (r1i r5i) L
exit:
  halt
"""
        )
        loop = next(l for l in find_loops(f) if l.header == "L")
        form_superblock(f, loop)
        n = 16
        mem = Memory()
        rng = np.random.default_rng(3)
        A = rng.permutation(np.arange(1.0, n + 1))
        mem.bind_array("A", A)
        res = simulate(f, unlimited(), mem, iregs={1: 0, 5: 4 * n},
                       fregs={3: 0.0})
        assert res.fregs[3] == A.max()

    def test_multi_latch_rejected(self):
        f = parse_function(
            """
function t:
entry:
L:
  blt (r1i r2i) L
B:
  r1i = r1i + 1
  blt (r1i r3i) L
exit:
  halt
"""
        )
        loop = next(l for l in find_loops(f) if l.header == "L")
        with pytest.raises(FormationError):
            select_trace(f, loop)
