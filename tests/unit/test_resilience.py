"""Unit tests for the resilience layer: retry schedule, circuit
breaker, error taxonomy, fault-plan determinism, tmp-file janitor.

Everything time-dependent runs on a fake clock / injected sleep — no
test here waits on wall time.
"""

import errno
import os
import random

import pytest

from repro.resilience.errors import (
    CorruptArtifact,
    FatalError,
    TransientError,
    classify_exception,
    classify_os_error,
    clean_orphan_tmps,
)
from repro.resilience.faults import ARMED, FaultPlan, FaultSite, armed
from repro.resilience import faults as faults_mod
from repro.resilience.retry import RetryPolicy, RetryState, retry_call
from repro.resilience.supervisor import CircuitBreaker


# ---------------------------------------------------------------------------
# retry policy / backoff schedule
# ---------------------------------------------------------------------------


class TestRetrySchedule:
    def test_backoff_doubles_then_caps(self):
        p = RetryPolicy(base_s=0.1, cap_s=0.5)
        assert p.max_delay(0) == pytest.approx(0.1)
        assert p.max_delay(1) == pytest.approx(0.2)
        assert p.max_delay(2) == pytest.approx(0.4)
        assert p.max_delay(3) == pytest.approx(0.5)   # capped
        assert p.max_delay(10) == pytest.approx(0.5)

    def test_full_jitter_stays_inside_the_window(self):
        p = RetryPolicy(base_s=0.1, cap_s=2.0)
        rng = random.Random(42)
        for attempt in range(6):
            for _ in range(50):
                d = p.delay(attempt, rng)
                assert 0.0 <= d <= p.max_delay(attempt)

    def test_jitter_actually_varies(self):
        p = RetryPolicy(base_s=1.0, cap_s=8.0)
        rng = random.Random(7)
        assert len({p.delay(3, rng) for _ in range(10)}) > 1

    def test_attempt_cap_exhausts_the_schedule(self):
        st = RetryState(RetryPolicy(max_attempts=3, budget_s=1e9),
                        rng=random.Random(0))
        assert st.next_delay() is not None
        assert st.next_delay() is not None
        assert st.next_delay() is None   # 3 total tries = 2 retries

    def test_budget_exhaustion_beats_the_attempt_cap(self):
        # retry_after charges the budget directly, making it deterministic
        st = RetryState(RetryPolicy(max_attempts=100, budget_s=5.0),
                        rng=random.Random(0))
        assert st.next_delay(retry_after=4.0) == pytest.approx(4.0)
        assert st.next_delay(retry_after=2.0) is None   # 4 + 2 > 5
        assert st.slept_s == pytest.approx(4.0)

    def test_retry_after_overrides_the_computed_backoff(self):
        st = RetryState(RetryPolicy(base_s=0.01, budget_s=100.0),
                        rng=random.Random(0))
        assert st.next_delay(retry_after=7.5) == pytest.approx(7.5)

    def test_retry_call_retries_transient_until_success(self):
        calls, slept = [], []
        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("not yet")
            return "done"
        out = retry_call(flaky, policy=RetryPolicy(max_attempts=5),
                         rng=random.Random(0), sleep=slept.append)
        assert out == "done"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_retry_call_raises_fatal_immediately(self):
        calls = []
        def broken():
            calls.append(1)
            raise FatalError("no")
        with pytest.raises(FatalError):
            retry_call(broken, sleep=lambda s: None)
        assert len(calls) == 1

    def test_retry_call_reraises_after_exhaustion(self):
        def always():
            raise TransientError("still down")
        with pytest.raises(TransientError):
            retry_call(always, policy=RetryPolicy(max_attempts=3),
                       rng=random.Random(0), sleep=lambda s: None)

    def test_retry_call_reports_each_retry(self):
        seen = []
        def flaky():
            if len(seen) < 2:
                raise OSError(errno.EIO, "flaky disk")
            return 1
        retry_call(flaky, rng=random.Random(0), sleep=lambda s: None,
                   on_retry=lambda a, d, e: seen.append((a, e.errno)))
        assert [e for _, e in seen] == [errno.EIO, errno.EIO]


# ---------------------------------------------------------------------------
# circuit breaker (fake clock)
# ---------------------------------------------------------------------------


class _Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestCircuitBreaker:
    def _breaker(self, threshold=3, cooldown=10.0):
        clock = _Clock()
        return CircuitBreaker(failure_threshold=threshold,
                              cooldown_s=cooldown, clock=clock), clock

    def test_closed_allows(self):
        b, _ = self._breaker()
        assert b.state == "closed" and b.allow()

    def test_opens_after_consecutive_failures(self):
        b, _ = self._breaker(threshold=3)
        b.record_failure(); b.record_failure()
        assert b.state == "closed"
        b.record_failure()
        assert b.state == "open" and b.trips == 1
        assert not b.allow()

    def test_success_resets_the_failure_streak(self):
        b, _ = self._breaker(threshold=3)
        b.record_failure(); b.record_failure()
        b.record_success()
        b.record_failure(); b.record_failure()
        assert b.state == "closed"   # streak broken: 2 + 2, never 3

    def test_half_open_grants_exactly_one_probe(self):
        b, clock = self._breaker(threshold=1, cooldown=10.0)
        b.record_failure()
        assert not b.allow()
        clock.t = 10.0
        assert b.allow()             # the probe
        assert b.state == "half_open"
        assert not b.allow()         # probe already out

    def test_successful_probe_closes(self):
        b, clock = self._breaker(threshold=1, cooldown=5.0)
        b.record_failure()
        clock.t = 5.0
        assert b.allow()
        b.record_success()
        assert b.state == "closed" and b.allow()

    def test_failed_probe_reopens_and_restarts_the_cooldown(self):
        b, clock = self._breaker(threshold=1, cooldown=5.0)
        b.record_failure()
        clock.t = 5.0
        assert b.allow()
        b.record_failure()
        assert b.state == "open" and b.trips == 2
        clock.t = 9.0
        assert not b.allow()         # new cooldown runs from t=5
        clock.t = 10.0
        assert b.allow()


# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------


class TestTaxonomy:
    @pytest.mark.parametrize("eno", [errno.ENOSPC, errno.EIO, errno.EAGAIN,
                                     errno.EBUSY, errno.ECONNRESET])
    def test_transient_errnos(self, eno):
        assert classify_os_error(OSError(eno, "x")) == "transient"

    def test_enoent_is_transient_for_cleanup_paths(self):
        assert classify_os_error(OSError(errno.ENOENT, "gone")) == "transient"

    @pytest.mark.parametrize("eno", [errno.EACCES, errno.EPERM, errno.EROFS])
    def test_permission_problems_are_fatal(self, eno):
        assert classify_os_error(OSError(eno, "x")) == "fatal"

    def test_exception_classes_map_onto_the_taxonomy(self):
        assert classify_exception(TransientError()) == "transient"
        assert classify_exception(CorruptArtifact()) == "corrupt"
        assert classify_exception(FatalError()) == "fatal"
        assert classify_exception(ValueError("bug")) == "fatal"
        assert classify_exception(OSError(errno.EIO, "x")) == "transient"


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_rate_one_selects_every_key(self):
        p = FaultPlan(seed=0, sites=(FaultSite("worker.kill", rate=1.0),))
        assert all(p.count_for("worker.kill", f"k{i}") == 1
                   for i in range(20))

    def test_rate_zero_selects_nothing(self):
        p = FaultPlan(seed=0, sites=(FaultSite("worker.kill", rate=0.0),))
        assert all(p.count_for("worker.kill", f"k{i}") == 0
                   for i in range(20))

    def test_selection_is_deterministic_across_instances(self):
        a = FaultPlan(seed=3, sites=(FaultSite("store.eio", rate=0.5),))
        b = FaultPlan(seed=3, sites=(FaultSite("store.eio", rate=0.5),))
        keys = [f"key-{i}" for i in range(64)]
        assert ([a.count_for("store.eio", k) for k in keys]
                == [b.count_for("store.eio", k) for k in keys])

    def test_different_seeds_select_different_keys(self):
        keys = [f"key-{i}" for i in range(128)]
        picks = []
        for seed in (0, 1):
            p = FaultPlan(seed=seed,
                          sites=(FaultSite("store.eio", rate=0.5),))
            picks.append([p.count_for("store.eio", k) for k in keys])
        assert picks[0] != picks[1]

    def test_rate_half_selects_roughly_half(self):
        p = FaultPlan(seed=0, sites=(FaultSite("store.eio", rate=0.5),))
        n = sum(p.count_for("store.eio", f"key-{i}") for i in range(400))
        assert 140 <= n <= 260

    def test_attempt_gating_fires_then_runs_clean(self):
        p = FaultPlan(seed=0,
                      sites=(FaultSite("worker.kill", rate=1.0, fires=2),))
        assert p.fire("worker.kill", "k", attempt=0) is not None
        assert p.fire("worker.kill", "k", attempt=1) is not None
        assert p.fire("worker.kill", "k", attempt=2) is None

    def test_fire_records_injections(self):
        p = FaultPlan(seed=0, sites=(FaultSite("store.enospc", rate=1.0),))
        p.fire("store.enospc", "a")
        p.fire("store.enospc", "b")
        p.fire("store.enospc", "b", attempt=1)   # gated off: not counted
        assert p.injected["store.enospc"] == 2

    def test_unarmed_site_never_fires(self):
        p = FaultPlan(seed=0, sites=(FaultSite("worker.kill", rate=1.0),))
        assert p.fire("store.eio", "k") is None

    def test_json_round_trip(self):
        p = FaultPlan(seed=9, sites=(
            FaultSite("worker.hang", rate=0.25, fires=2, delay_s=3.0),
            FaultSite("store.torn_write", rate=0.5),
        ))
        q = FaultPlan.from_json(p.to_json())
        assert q.seed == 9 and q.sites == p.sites

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultSite("worker.typo")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultSite("worker.kill", rate=1.5)

    def test_duplicate_sites_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(sites=(FaultSite("worker.kill"),
                             FaultSite("worker.kill")))

    def test_armed_context_restores_previous_plan(self):
        assert faults_mod.ARMED is None
        p = FaultPlan(seed=0, sites=())
        with armed(p):
            assert faults_mod.ARMED is p
        assert faults_mod.ARMED is None

    def test_next_seq_counts_per_site(self):
        p = FaultPlan(seed=0, sites=())
        assert p.next_seq("server.drop_response") == "#0"
        assert p.next_seq("server.drop_response") == "#1"
        assert p.next_seq("server.delay_response") == "#0"


# ---------------------------------------------------------------------------
# orphaned-tmp janitor
# ---------------------------------------------------------------------------


class TestCleanOrphanTmps:
    def _plant(self, path, age_s, now=1_000_000.0):
        path.write_text("partial write")
        os.utime(path, (now - age_s, now - age_s))

    def test_removes_old_keeps_fresh_and_non_tmp(self, tmp_path):
        now = 1_000_000.0
        self._plant(tmp_path / "dead.tmp", age_s=3600, now=now)
        self._plant(tmp_path / ".hidden-123.tmp", age_s=3600, now=now)
        self._plant(tmp_path / "live.tmp", age_s=5, now=now)
        self._plant(tmp_path / "data.json", age_s=3600, now=now)
        removed = clean_orphan_tmps(tmp_path, grace_s=600, now=now)
        assert removed == 2
        assert not (tmp_path / "dead.tmp").exists()
        assert not (tmp_path / ".hidden-123.tmp").exists()
        assert (tmp_path / "live.tmp").exists()
        assert (tmp_path / "data.json").exists()

    def test_recursive_reaches_subdirectories(self, tmp_path):
        now = 1_000_000.0
        sub = tmp_path / "objects" / "ab"
        sub.mkdir(parents=True)
        self._plant(sub / "deep.tmp", age_s=3600, now=now)
        assert clean_orphan_tmps(tmp_path, grace_s=600, now=now) == 1
        assert not (sub / "deep.tmp").exists()

    def test_non_recursive_stays_shallow(self, tmp_path):
        now = 1_000_000.0
        sub = tmp_path / "sub"
        sub.mkdir()
        self._plant(sub / "deep.tmp", age_s=3600, now=now)
        assert clean_orphan_tmps(tmp_path, grace_s=600, recursive=False,
                                 now=now) == 0
        assert (sub / "deep.tmp").exists()

    def test_missing_directory_is_a_noop(self, tmp_path):
        assert clean_orphan_tmps(tmp_path / "nope") == 0
