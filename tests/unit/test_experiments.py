"""Unit tests for the experiments harness: binning, distributions,
sweep plumbing, renderers, and the CLI."""

import numpy as np
import pytest

from repro.experiments.histograms import (
    REGISTER_BINS,
    SPEEDUP_BINS_ISSUE2,
    SPEEDUP_BINS_ISSUE8,
    bin_counts,
    doall_filter,
    register_distribution,
    speedup_distribution,
)
from repro.experiments.sweep import (
    ConfigResult,
    SweepData,
    load_sweep,
    run_config,
    save_sweep,
)
from repro.experiments.tables import (
    compute_headline_claims,
    render_table1,
    render_table2,
)
from repro.machine import MachineConfig, issue1
from repro.pipeline import Level
from repro.workloads import get_workload


class TestBins:
    def test_bin_edges_cover_all_values(self):
        vals = [0.0, 1.24, 1.25, 2.0, 5.7, 100.0]
        counts = bin_counts(vals, SPEEDUP_BINS_ISSUE2)
        assert sum(counts) == len(vals)

    def test_paper_bin_labels(self):
        assert SPEEDUP_BINS_ISSUE2[0][0] == "0.00-1.24"
        assert SPEEDUP_BINS_ISSUE2[-1][0] == "3.00+"
        assert SPEEDUP_BINS_ISSUE8[0][0] == "0.00-1.99"
        assert SPEEDUP_BINS_ISSUE8[-1][0] == "8.00+"
        assert [b[0] for b in REGISTER_BINS] == [
            "0-15", "16-31", "32-47", "48-63", "64-95", "96-127", "128+"
        ]

    def test_boundary_assignment(self):
        assert bin_counts([1.25], SPEEDUP_BINS_ISSUE2)[1] == 1
        assert bin_counts([1.2499], SPEEDUP_BINS_ISSUE2)[0] == 1
        assert bin_counts([128.0], REGISTER_BINS)[-1] == 1
        assert bin_counts([127.0], REGISTER_BINS)[-2] == 1


def fake_sweep() -> SweepData:
    """A tiny synthetic grid for distribution plumbing tests."""
    data = SweepData()
    specs = {"add": 8.0, "dotprod": 2.0}  # lev4 speedups at width 8
    for name, s4 in specs.items():
        for level in Level:
            for width in (1, 2, 4, 8):
                if level is Level.CONV and width == 1:
                    cycles = 1000
                else:
                    factor = 1.0 + (s4 - 1.0) * (int(level) / 4) * (width / 8)
                    cycles = int(1000 / factor)
                data.results[(name, int(level), width)] = ConfigResult(
                    name, int(level), width, cycles, cycles, 10,
                    4 + 2 * int(level), 4 + 3 * int(level), True,
                )
    return data


class TestSweepData:
    def test_speedup_baseline(self):
        data = fake_sweep()
        assert data.speedup("add", Level.CONV, 1) == 1.0
        assert data.speedup("add", Level.LEV4, 8) == pytest.approx(8.0, rel=0.01)

    def test_distribution_series_counts(self):
        data = fake_sweep()
        dist = speedup_distribution(data, 8)
        for level in Level:
            assert sum(dist.series[level.label]) == 2

    def test_register_distribution(self):
        data = fake_sweep()
        dist = register_distribution(data, 8)
        # int 4+2*4=12, fp 4+3*4=16 at Lev4
        assert dist.average("Lev4") == pytest.approx(28.0)

    def test_doall_filter(self):
        f = doall_filter(True)
        assert f("add") and not f("dotprod")

    def test_render_contains_all_bins(self):
        data = fake_sweep()
        text = speedup_distribution(data, 8).render()
        for label, _, _ in SPEEDUP_BINS_ISSUE8:
            assert label in text
        assert "average" in text

    def test_save_and_load_roundtrip(self, tmp_path, monkeypatch):
        # a partial grid is rejected on load (must be complete)
        data = fake_sweep()
        p = tmp_path / "sweep.json"
        save_sweep(data, p)
        assert load_sweep(p) is None  # only 2 workloads, not 40

    def test_load_missing_returns_none(self, tmp_path):
        assert load_sweep(tmp_path / "nope.json") is None


class TestRunConfig:
    def test_run_config_checks_and_measures(self):
        w = get_workload("add")
        r = run_config(w, Level.CONV, issue1())
        assert r.cycles > 0 and r.instructions > 0
        assert r.total_regs == r.int_regs + r.fp_regs
        assert r.checked

    def test_detects_wrong_results(self):
        # sabotage the reference to prove checking is real
        w = get_workload("add")
        orig_ref = w.reference
        try:
            w.reference = lambda a, s: ({"C": a["A"] * 999.0}, {})
            with pytest.raises(AssertionError):
                run_config(w, Level.CONV, issue1())
        finally:
            w.reference = orig_ref


class TestRenderers:
    def test_table1_text(self):
        text = render_table1()
        assert "Int divide" in text and "10" in text
        assert "branch" in text and "1 slot" in text

    def test_table2_lists_all_40(self):
        text = render_table2()
        for name in ("APS-1", "doduc-1", "maxval", "tomcatv-2"):
            assert name in text
        assert len(text.splitlines()) >= 44


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dotprod" in out and "PERFECT" in out

    def test_show(self, capsys):
        from repro.cli import main

        assert main(["show", "maxval"]) == 0
        out = capsys.readouterr().out
        assert "DO i" in out and "IF" in out

    def test_run(self, capsys):
        from repro.cli import main

        assert main(["run", "add", "--level", "2", "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "[checked]" in out

    def test_mii(self, capsys):
        from repro.cli import main

        assert main(["mii", "sum", "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert "RecMII" in out

    def test_compile(self, capsys):
        from repro.cli import main

        assert main(["compile", "add", "--level", "4"]) == 0
        out = capsys.readouterr().out
        assert "registers:" in out
