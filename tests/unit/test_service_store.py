"""Failure-mode tests for the content-addressed artifact store.

A persistent cache layer is only safe if every way it can rot degrades
to a *miss* (recompute) rather than serving garbage: concurrent
writers, torn blobs, size-pressure eviction, and code-version changes
are each pinned here.
"""

import hashlib
import json
import multiprocessing

import pytest

from repro.service.keys import request_key
from repro.service.store import ArtifactStore


def key_of(n: int) -> str:
    return hashlib.sha256(str(n).encode()).hexdigest()


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestRoundTrip:
    def test_put_get(self, store):
        k = key_of(1)
        store.put(k, {"cycles": 42, "t_passes": {"b": 1.0, "a": 2.0}})
        got = store.get(k)
        assert got == {"cycles": 42, "t_passes": {"b": 1.0, "a": 2.0}}
        # insertion order round-trips (ConfigResult.t_passes records
        # pass execution order)
        assert list(got["t_passes"]) == ["b", "a"]
        assert store.stats.hits == 1 and store.stats.puts == 1

    def test_absent_is_miss(self, store):
        assert store.get(key_of(2)) is None
        assert store.stats.misses == 1

    def test_malformed_key_rejected(self, store):
        with pytest.raises(ValueError, match="malformed"):
            store.get("../../etc/passwd")
        with pytest.raises(ValueError, match="malformed"):
            store.put("abc", {})

    def test_real_request_keys_address_blobs(self, store):
        k = request_key("run", "add", 4, 8)
        store.put(k, {"cycles": 1})
        assert store.get(k) == {"cycles": 1}

    def test_reopen_sees_existing_blobs(self, tmp_path):
        a = ArtifactStore(tmp_path / "s")
        a.put(key_of(3), {"x": 1})
        b = ArtifactStore(tmp_path / "s")
        assert b.get(key_of(3)) == {"x": 1}
        assert len(b) == 1


class TestCorruptionTolerance:
    def _blob_path(self, store, key):
        return store._blob_path(key)

    def test_truncated_blob_is_miss_and_quarantined(self, store):
        k = key_of(4)
        p = store.put(k, {"cycles": 9})
        raw = p.read_bytes()
        p.write_bytes(raw[: len(raw) // 2])  # torn mid-write
        assert store.get(k) is None
        assert store.stats.quarantined == 1
        assert not p.exists()  # moved aside, cannot poison later reads
        assert list((store.root / "quarantine").iterdir())
        # and a recompute can re-populate the same key
        store.put(k, {"cycles": 9})
        assert store.get(k) == {"cycles": 9}

    def test_garbage_bytes_are_miss(self, store):
        k = key_of(5)
        p = self._blob_path(store, k)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_bytes(b"\xfe\xffnot json")
        assert store.get(k) is None
        assert store.stats.quarantined == 1

    def test_wrong_key_envelope_is_miss(self, store):
        """A blob whose envelope names a different key (e.g. a file
        copied to the wrong path) must not be served."""
        k1, k2 = key_of(6), key_of(7)
        p1 = store.put(k1, {"v": 1})
        p2 = self._blob_path(store, k2)
        p2.parent.mkdir(parents=True, exist_ok=True)
        p2.write_bytes(p1.read_bytes())
        assert store.get(k2) is None
        assert store.get(k1) == {"v": 1}

    def test_missing_payload_field_is_miss(self, store):
        k = key_of(8)
        p = self._blob_path(store, k)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps({"salt": store.salt, "key": k}))
        assert store.get(k) is None

    def test_torn_index_rebuilt_from_scan(self, tmp_path):
        a = ArtifactStore(tmp_path / "s")
        a.put(key_of(9), {"v": 1})
        a.put(key_of(10), {"v": 2})
        (tmp_path / "s" / "index.json").write_text('{"entries": {zzz')
        b = ArtifactStore(tmp_path / "s")
        assert len(b) == 2
        assert b.get(key_of(9)) == {"v": 1}


class TestVersionSalt:
    def test_salt_mismatch_is_miss_and_invalidates(self, tmp_path):
        old = ArtifactStore(tmp_path / "s", salt="code-v1")
        k = key_of(11)
        p = old.put(k, {"cycles": 7})
        new = ArtifactStore(tmp_path / "s", salt="code-v2")
        assert new.get(k) is None
        assert new.stats.invalidated == 1
        assert not p.exists()  # stale blob deleted, not quarantined
        assert new.stats.quarantined == 0
        new.put(k, {"cycles": 8})
        assert new.get(k) == {"cycles": 8}

    def test_default_salt_is_code_version(self, store):
        from repro.service.keys import CODE_VERSION

        assert store.salt == CODE_VERSION


class TestEviction:
    def test_size_cap_evicts_lru(self, tmp_path):
        store = ArtifactStore(tmp_path / "s", max_bytes=1)
        pad = "x" * 200
        store.put(key_of(20), {"pad": pad})
        store.put(key_of(21), {"pad": pad})
        # cap of 1 byte: every insert evicts the previous entry
        assert store.get(key_of(20)) is None
        assert store.get(key_of(21)) == {"pad": pad}
        assert store.stats.evictions >= 1

    def test_reads_refresh_recency(self, tmp_path):
        import time

        # each blob is ~3.1KB with its envelope: two fit, three do not
        store = ArtifactStore(tmp_path / "s", max_bytes=7_000)
        pad = "x" * 3000
        store.put(key_of(30), {"pad": pad})
        time.sleep(0.01)
        store.put(key_of(31), {"pad": pad})
        time.sleep(0.01)
        assert store.get(key_of(30)) is not None  # 30 now most recent
        time.sleep(0.01)
        store.put(key_of(32), {"pad": pad})  # pushes size past the cap
        assert store.get(key_of(31)) is None  # 31 was least recently used
        assert store.get(key_of(30)) is not None
        assert store.get(key_of(32)) is not None

    def test_unbounded_store_never_evicts(self, store):
        for i in range(40, 60):
            store.put(key_of(i), {"i": i})
        assert len(store) == 20
        assert store.stats.evictions == 0
        assert store.total_bytes() > 0


def _writer(root, key, tag, n):
    s = ArtifactStore(root)
    for i in range(n):
        s.put(key, {"tag": tag, "i": i, "cycles": 123})


class TestConcurrentWriters:
    def test_two_processes_same_key(self, tmp_path):
        """Two processes hammering the same key: atomic tmp+rename means a
        reader always sees one writer's complete blob, never a torn mix."""
        root = tmp_path / "s"
        ArtifactStore(root)  # create layout up front
        k = key_of(70)
        ctx = multiprocessing.get_context("fork")
        ps = [ctx.Process(target=_writer, args=(root, k, tag, 25))
              for tag in ("a", "b")]
        for p in ps:
            p.start()
        for p in ps:
            p.join()
        assert all(p.exitcode == 0 for p in ps)
        got = ArtifactStore(root).get(k)
        assert got is not None and got["cycles"] == 123
        assert got["tag"] in ("a", "b") and got["i"] == 24

    def test_concurrent_distinct_keys_all_readable(self, tmp_path):
        root = tmp_path / "s"
        ArtifactStore(root)
        ctx = multiprocessing.get_context("fork")
        ps = [ctx.Process(target=_writer, args=(root, key_of(80 + j), str(j), 5))
              for j in range(4)]
        for p in ps:
            p.start()
        for p in ps:
            p.join()
        reader = ArtifactStore(root)
        for j in range(4):
            got = reader.get(key_of(80 + j))
            assert got == {"tag": str(j), "i": 4, "cycles": 123}


class TestStoreResilience:
    """Classified write failures: retry, then degrade; never a wrong read."""

    def _armed(self, site, fires=1):
        from repro.resilience.faults import FaultPlan, FaultSite, armed

        return armed(FaultPlan(seed=0,
                               sites=(FaultSite(site, rate=1.0, fires=fires),)))

    def test_enospc_is_retried_and_the_put_lands(self, store):
        k = key_of(90)
        with self._armed("store.enospc"):
            assert store.put(k, {"v": 1}) is not None
        assert store.stats.put_retries == 1
        assert store.stats.put_failures == 0
        assert store.get(k) == {"v": 1}

    def test_eio_at_fsync_is_retried_and_the_put_lands(self, store):
        k = key_of(91)
        with self._armed("store.eio"):
            assert store.put(k, {"v": 2}) is not None
        assert store.stats.put_retries == 1
        assert store.get(k) == {"v": 2}

    def test_persistent_write_failure_degrades_instead_of_raising(self, store):
        # fires exceeds the put retry schedule: the put gives up quietly
        k = key_of(92)
        with self._armed("store.enospc", fires=99):
            assert store.put(k, {"v": 3}) is None
        assert store.stats.put_failures == 1
        assert store.get(k) is None          # a miss, not an error
        # no tmp droppings left behind by the failed attempts
        assert not list(store.root.glob("**/*.tmp"))

    def test_torn_write_is_detected_quarantined_and_recomputable(self, store):
        k = key_of(93)
        with self._armed("store.torn_write"):
            store.put(k, {"v": 4, "pad": "x" * 256})
            assert store.get(k) is None      # torn: miss + quarantine
            assert store.stats.quarantined == 1
            # the "recompute" writes again: attempt 1 is past the fault
            store.put(k, {"v": 4, "pad": "x" * 256})
            assert store.get(k) == {"v": 4, "pad": "x" * 256}

    def test_fatal_write_error_raises(self, store, monkeypatch):
        import errno as _errno

        def denied(self, *a, **kw):
            raise OSError(_errno.EACCES, "permission denied")

        monkeypatch.setattr(ArtifactStore, "_write_blob", denied)
        with pytest.raises(OSError):
            store.put(key_of(94), {"v": 5})

    def test_transient_eviction_error_is_absorbed(self, store, monkeypatch):
        import errno as _errno
        import pathlib

        store.max_bytes = 1  # force eviction on the next put
        store.put(key_of(95), {"v": "a" * 64})
        real_unlink = pathlib.Path.unlink

        def busy(self, *a, **kw):
            if self.suffix == ".json" and "objects" in self.parts:
                raise OSError(_errno.EBUSY, "busy")
            return real_unlink(self, *a, **kw)

        monkeypatch.setattr(pathlib.Path, "unlink", busy)
        store.put(key_of(96), {"v": "b" * 64})   # evicts -> EBUSY absorbed
        assert store.stats.evict_errors >= 1

    def test_orphaned_tmps_cleaned_on_open(self, tmp_path):
        import os as _os

        root = tmp_path / "store"
        objects = root / "objects" / "ab"
        objects.mkdir(parents=True)
        dead = objects / ".abcd-999.tmp"
        dead.write_text("torn half-write")
        old = 1.0
        _os.utime(dead, (old, old))
        fresh = objects / ".ef01-998.tmp"
        fresh.write_text("maybe live")
        s = ArtifactStore(root)
        assert s.stats.tmp_cleaned == 1
        assert not dead.exists()
        assert fresh.exists()


class TestClockCorrectness:
    """LRU recency is a logical-use counter, never a wall-clock stamp.

    Regression: recency used to be ``time.time()``; a backwards clock
    step (NTP correction, manual reset) between a put and a refreshing
    read stamped the *hottest* blob as the oldest and evicted it first.
    """

    def test_recency_survives_a_backwards_wall_clock(self, tmp_path,
                                                     monkeypatch):
        import time as time_mod

        t = [1_000_000_000.0]

        def backwards():
            t[0] -= 100.0  # the wall clock is stepping backwards
            return t[0]

        monkeypatch.setattr(time_mod, "time", backwards)
        store = ArtifactStore(tmp_path / "s", max_bytes=7_000)
        pad = "x" * 3000  # ~3.1KB with envelope: two fit, three do not
        store.put(key_of(70), {"pad": pad})
        store.put(key_of(71), {"pad": pad})
        assert store.get(key_of(70)) is not None  # 70 now most recent
        store.put(key_of(72), {"pad": pad})       # pushes past the cap
        # under wall-clock recency the refreshed 70 would carry the
        # *oldest* stamp and be evicted; the logical counter keeps it
        assert store.get(key_of(71)) is None
        assert store.get(key_of(70)) is not None
        assert store.get(key_of(72)) is not None

    def test_use_counter_persists_across_reopen(self, tmp_path):
        pad = "x" * 3000  # ~3.1KB with envelope: three fit, four do not
        store = ArtifactStore(tmp_path / "s", max_bytes=10_500)
        store.put(key_of(73), {"pad": pad})
        store.put(key_of(74), {"pad": pad})
        assert store.get(key_of(73)) is not None  # 74 is now the LRU
        store.put(key_of(75), {"pad": pad})       # persists the index

        reopened = ArtifactStore(tmp_path / "s", max_bytes=10_500)
        reopened.put(key_of(79), {"pad": pad})    # past the cap: evict LRU
        assert reopened.get(key_of(74)) is None
        assert reopened.get(key_of(73)) is not None
        assert reopened.get(key_of(75)) is not None

    def test_legacy_wall_clock_index_loads_as_rank(self, tmp_path):
        """An index written by the old code carries wall-clock floats in
        ``used``; they load as a recency *rank* (order preserved) and
        are re-stamped as logical counters."""
        pad = "x" * 3000
        store = ArtifactStore(tmp_path / "s", max_bytes=7_000)
        store.put(key_of(76), {"pad": pad})
        store.put(key_of(77), {"pad": pad})
        # rewrite the index the way the old code would have: wall-clock
        # stamps, with 77 older than 76
        idx = json.loads((tmp_path / "s" / "index.json").read_text())
        idx["entries"][key_of(76)]["used"] = 1_700_000_000.75
        idx["entries"][key_of(77)]["used"] = 1_600_000_000.25
        (tmp_path / "s" / "index.json").write_text(json.dumps(idx))

        reopened = ArtifactStore(tmp_path / "s", max_bytes=7_000)
        reopened.put(key_of(78), {"pad": pad})
        assert reopened.get(key_of(77)) is None   # oldest by float order
        assert reopened.get(key_of(76)) is not None

    def test_scan_rebuild_ranks_deterministically_by_mtime(self, tmp_path):
        import os as _os

        pad = "x" * 3000
        store = ArtifactStore(tmp_path / "s", max_bytes=None)
        for i in (80, 81, 82):
            store.put(key_of(i), {"pad": pad})
        (tmp_path / "s" / "index.json").unlink()
        # make 81 the stale one on disk, regardless of write order
        for i, mtime in ((80, 3000.0), (81, 1000.0), (82, 2000.0)):
            p = store._blob_path(key_of(i))
            _os.utime(p, (mtime, mtime))

        rebuilt = ArtifactStore(tmp_path / "s", max_bytes=7_000)
        rebuilt.put(key_of(83), {"pad": pad})
        assert rebuilt.get(key_of(81)) is None
        assert rebuilt.get(key_of(80)) is not None
