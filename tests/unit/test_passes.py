"""Unit tests for the unified pass manager (:mod:`repro.passes`).

Covers the registry invariants, level gating, ``--disable-pass``
validation and semantics, fixpoint accounting, PassStats recording,
the PipelineReport compatibility properties, and --print-after dumps.
"""

import io

import numpy as np
import pytest

from repro.frontend import ArrayDecl, Kernel, Ty, aref, assign, do, var
from repro.frontend.lower import lower_kernel
from repro.harness import compile_kernel, run_compiled_kernel
from repro.machine import MachineConfig, issue8
from repro.opt.driver import run_conv
from repro.passes import (
    PassManager,
    PassOptions,
    PipelineContext,
    PipelineReport,
)
from repro.passes.stats import PassStats
from repro.passes.registry import (
    DEFAULT_PHASES,
    PHASE_ORDER,
    ablatable_passes,
    all_passes,
    get_pass,
)
from repro.pipeline import Level
from repro.workloads import get_workload


def vadd(n=24, kind="doall"):
    i = var("i")
    return Kernel(
        "k",
        arrays={x: ArrayDecl(Ty.FP, (n,)) for x in "ABC"},
        scalars={},
        body=[do("i", 1, n, [assign(aref("C", i), aref("A", i) + aref("B", i))],
                 kind=kind)],
    )


class TestRegistry:
    def test_phase_order_matches_registry(self):
        assert tuple(PHASE_ORDER) == ("conv", "ilp", "cleanup", "schedule")
        assert set(PHASE_ORDER) == set(DEFAULT_PHASES)

    def test_pass_names_unique(self):
        names = [p.name for p in all_passes()]
        assert len(names) == len(set(names))

    def test_pass_phase_matches_owner(self):
        for phase_name, phase in DEFAULT_PHASES.items():
            for p in phase.passes:
                assert p.phase == phase_name

    def test_get_pass(self):
        assert get_pass("rename").phase == "ilp"
        with pytest.raises(KeyError):
            get_pass("nope")

    def test_structural_passes_not_ablatable(self):
        names = {p.name for p in ablatable_passes()}
        assert "superblock" not in names and "listsched" not in names
        assert "dce" in names and "rename" in names

    def test_ablatable_respects_level_gate(self):
        lev1 = {p.name for p in ablatable_passes(Level.LEV1)}
        lev4 = {p.name for p in ablatable_passes(Level.LEV4)}
        assert "treeheight" not in lev1 and "accumulate" not in lev1
        assert "treeheight" in lev4 and "accumulate" in lev4
        assert "unroll" in lev1

    def test_conv_phase_is_fixpoint(self):
        conv = DEFAULT_PHASES["conv"]
        assert conv.fixpoint and conv.max_rounds == 10
        cleanup = DEFAULT_PHASES["cleanup"]
        assert cleanup.fixpoint and cleanup.max_rounds == 4
        assert DEFAULT_PHASES["ilp"].max_rounds == 1


class TestOptionsValidation:
    def test_unknown_disable_rejected(self):
        with pytest.raises(ValueError, match="unknown pass"):
            PassManager(PassOptions(disable=("nosuch",)))

    def test_unknown_print_after_rejected(self):
        with pytest.raises(ValueError, match="unknown pass"):
            PassManager(PassOptions(print_after=("nosuch",)))

    @pytest.mark.parametrize("name", ["superblock", "listsched"])
    def test_structural_disable_refused(self, name):
        with pytest.raises(ValueError, match="structural"):
            PassManager(PassOptions(disable=(name,)))

    def test_options_key_is_sorted_dedup(self):
        opts = PassOptions(disable=("rename", "dce", "rename"))
        assert opts.key == ("dce", "rename")
        # printing flags do not change the result-relevant identity
        assert PassOptions(print_changed=True).key == ()


class TestGatingAndStats:
    def test_level_gates_recorded_in_stats(self):
        names_at = {}
        for level in (Level.CONV, Level.LEV1, Level.LEV2, Level.LEV4):
            ck = compile_kernel(vadd(), level, issue8())
            names_at[level] = {s.name for s in ck.report.stats}
        assert "unroll" not in names_at[Level.CONV]
        assert "unroll" in names_at[Level.LEV1]
        assert "rename" not in names_at[Level.LEV1]
        assert "rename" in names_at[Level.LEV2]
        assert "induction" in names_at[Level.LEV4]
        # structural passes run at every level
        for level in names_at:
            assert "superblock" in names_at[level]
            assert "listsched" in names_at[level]

    def test_stats_rows_are_complete(self):
        ck = compile_kernel(vadd(), Level.LEV4, issue8())
        rep = ck.report
        assert rep.stats, "no PassStats recorded"
        for s in rep.stats:
            assert s.phase in PHASE_ORDER
            assert s.round >= 0 and s.rewrites >= 0 and s.seconds >= 0.0
            assert s.instr_delta == s.instrs_after - s.instrs_before
        # all four phases ran and recorded their round counts
        assert set(rep.phase_rounds) == set(PHASE_ORDER)
        # phases appear in pipeline order in the stats stream
        order = [PHASE_ORDER.index(s.phase) for s in rep.stats]
        assert order == sorted(order)

    def test_conv_fixpoint_round_accounting(self):
        lk = lower_kernel(vadd())
        rep = run_conv(lk.func, lk.counted, lk.live_out_exit)
        # ran to fixpoint: >= 2 rounds, last round made zero rewrites
        assert rep.rounds >= 2
        last = max(s.round for s in rep.phase_stats("conv"))
        assert sum(s.rewrites for s in rep.phase_stats("conv")
                   if s.round == last) == 0
        # a second run over the already-optimized code is a single
        # zero-change round (idempotence)
        rep2 = run_conv(lk.func, lk.counted, lk.live_out_exit)
        assert rep2.rounds == 1

    def test_report_properties_map_to_pass_names(self):
        ck = compile_kernel(get_workload("dotprod").build(), Level.LEV4, issue8())
        rep = ck.report
        assert rep.renamed == rep.rewrites("rename") > 0
        assert rep.accumulators == rep.rewrites("accumulate") == 1
        assert rep.dead == rep.rewrites("dce")
        assert rep.copies == rep.rewrites(
            "coalesce", "copyprop-local", "copyprop-global")
        assert rep.unroll_factor > 1
        assert rep.rounds == rep.phase_rounds["conv"]

    def test_pass_seconds_aggregation(self):
        ck = compile_kernel(vadd(), Level.LEV4, issue8())
        per_pass = ck.report.pass_seconds()
        assert per_pass["listsched"] == ck.report.seconds("listsched") > 0.0
        sched_only = ck.report.pass_seconds(phases=("schedule",))
        assert set(sched_only) == {"listsched"}

    def test_fork_isolates_downstream_stats(self):
        rep = PipelineReport()
        rep.stats.append(PassStats("dce", "conv", 0, 3, 0.0, 10, 7))
        fork = rep.fork()
        fork.stats.append(PassStats("listsched", "schedule", 0, 5, 0.0, 7, 7))
        assert len(rep.stats) == 1 and len(fork.stats) == 2
        assert fork.dead == rep.dead == 3


class TestDisableSemantics:
    def test_disabled_pass_never_runs(self):
        opts = PassOptions(disable=("dce",))
        ck = compile_kernel(vadd(), Level.LEV2, issue8(), options=opts)
        assert "dce" not in {s.name for s in ck.report.stats}
        assert ck.report.disabled == ("dce",)

    def test_disabled_output_still_correct(self):
        rng = np.random.default_rng(7)
        n = 24
        A, B = rng.standard_normal(n), rng.standard_normal(n)
        full = compile_kernel(vadd(n), Level.LEV2, issue8())
        ablated = compile_kernel(vadd(n), Level.LEV2, issue8(),
                                 options=PassOptions(disable=("dce", "cse")))
        outs = []
        for ck in (full, ablated):
            out = run_compiled_kernel(
                ck, arrays={"A": A, "B": B, "C": np.zeros(n)})
            assert np.array_equal(out.arrays["C"], A + B)
            outs.append(out)
        # the ablated binary really is a different (bigger) program
        assert ablated.lowered.func.n_instrs() >= full.lowered.func.n_instrs()

    def test_disabling_accumulate_changes_schedule(self):
        w = get_workload("dotprod")
        machine = MachineConfig(issue_width=8)
        full = compile_kernel(w.build(), Level.LEV4, machine)
        ablated = compile_kernel(
            w.build(), Level.LEV4, machine,
            options=PassOptions(disable=("accumulate",)))
        assert full.report.accumulators == 1
        assert ablated.report.accumulators == 0
        # without expansion the fp reduction serializes the unrolled body
        assert ablated.inner_makespan > full.inner_makespan


class TestPrintAfter:
    def test_print_after_dumps_ir(self):
        lk = lower_kernel(vadd())
        stream = io.StringIO()
        ctx = PipelineContext(func=lk.func, counted_map=lk.counted,
                              live_out_exit=lk.live_out_exit)
        PassManager(PassOptions(print_after=("dce",)), stream=stream).run_phase(
            "conv", ctx)
        text = stream.getvalue()
        assert "; IR after dce [conv]" in text
        assert f"function {lk.func.name}" in text

    def test_print_changed_only_dumps_rewriting_passes(self):
        lk = lower_kernel(vadd())
        stream = io.StringIO()
        ctx = PipelineContext(func=lk.func, counted_map=lk.counted,
                              live_out_exit=lk.live_out_exit)
        PassManager(PassOptions(print_changed=True), stream=stream).run_phase(
            "conv", ctx)
        dumped = [l for l in stream.getvalue().splitlines()
                  if l.startswith("; IR after")]
        assert dumped
        for line in dumped:
            assert "(0 rewrites)" not in line
