"""Unit tests for the simulator: semantics, timing model, memory."""

import numpy as np
import pytest

from repro.ir import Instr, Op, parse_function
from repro.machine import MachineConfig, issue1, issue2, unlimited
from repro.sim import Memory, SimMemoryError, SimulationError, simulate
from repro.ir.instructions import Kind


def run(text, machine=None, mem=None, iregs=None, fregs=None, **kw):
    f = parse_function(text)
    return simulate(f, machine or unlimited(), mem or Memory(),
                    iregs or {}, fregs or {}, **kw)


class TestSemantics:
    def test_int_arithmetic(self):
        res = run(
            """
function t:
A:
  r3i = r1i + r2i
  r4i = r1i - r2i
  r5i = r1i * r2i
  r6i = r1i / r2i
  r7i = r1i % r2i
  r8i = r1i << 2
  r9i = r1i >> 1
  halt
""",
            iregs={1: 17, 2: 5},
        )
        assert res.iregs[3] == 22
        assert res.iregs[4] == 12
        assert res.iregs[5] == 85
        assert res.iregs[6] == 3
        assert res.iregs[7] == 2
        assert res.iregs[8] == 68
        assert res.iregs[9] == 8

    def test_division_truncates_toward_zero(self):
        res = run(
            "function t:\nA:\n  r3i = r1i / r2i\n  r4i = r1i % r2i\n  halt\n",
            iregs={1: -7, 2: 2},
        )
        assert res.iregs[3] == -3  # not floor (-4)
        assert res.iregs[4] == -1

    def test_fp_arithmetic_and_conversion(self):
        res = run(
            """
function t:
A:
  r3f = r1f * r2f
  r4f = r1f / r2f
  r1i = ftoi(r4f)
  r5f = itof(r1i)
  halt
""",
            fregs={1: 7.0, 2: 2.0},
        )
        assert res.fregs[3] == 14.0
        assert res.fregs[4] == 3.5
        assert res.iregs[1] == 3  # truncation
        assert res.fregs[5] == 3.0

    def test_branch_taken_and_not_taken(self):
        res = run(
            """
function t:
A:
  blt (r1i r2i) T
  r3i = 1
  halt
T:
  r3i = 2
  halt
""",
            iregs={1: 5, 2: 9},
        )
        assert res.iregs[3] == 2
        res = run(
            "function t:\nA:\n  bge (r1i r2i) T\n  r3i = 1\n  halt\nT:\n  r3i = 2\n  halt\n",
            iregs={1: 5, 2: 9},
        )
        assert res.iregs[3] == 1

    def test_loop_counts_instructions(self):
        res = run(
            """
function t:
A:
  r1i = 0
L:
  r1i = r1i + 1
  blt (r1i 10) L
""",
        )
        assert res.iregs[1] == 10
        assert res.instructions == 1 + 2 * 10

    def test_memory_round_trip(self):
        mem = Memory()
        mem.bind_array("A", np.array([1.5, 2.5, 3.5]))
        res = run(
            """
function t:
A:
  r1f = MEM(A+4)
  MEM(A+8) = r1f
  halt
""",
            mem=mem,
        )
        assert mem.read_array("A", (3,)).tolist() == [1.5, 2.5, 2.5]

    def test_uninitialized_load_raises(self):
        with pytest.raises(SimMemoryError):
            run("function t:\nA:\n  r1f = MEM(r2i+0)\n  halt\n", iregs={2: 0x4000})

    def test_division_by_zero_raises(self):
        with pytest.raises(SimulationError):
            run("function t:\nA:\n  r3i = r1i / r2i\n  halt\n", iregs={1: 1, 2: 0})

    def test_infinite_loop_guarded(self):
        with pytest.raises(SimulationError):
            run("function t:\nA:\n  jmp A\n", max_cycles=1000)


class TestTimingModel:
    def test_flow_interlock_stalls(self):
        # load (lat 2) feeding an add: the add waits
        mem = Memory()
        mem.bind_array("A", np.array([7], dtype=np.int64))
        res = run(
            "function t:\nB:\n  r1i = MEM(A)\n  r2i = r1i + 1\n  halt\n",
            machine=unlimited(), mem=mem,
        )
        # load at 0, add at 2, halt at 2 -> 3 cycles
        assert res.cycles == 3

    def test_issue_width_limits(self):
        text = "function t:\nA:\n" + "\n".join(
            f"  r{k}i = 1" for k in range(1, 9)
        ) + "\n  halt\n"
        assert run(text, machine=MachineConfig(issue_width=8)).cycles == 2
        assert run(text, machine=issue1()).cycles == 9
        assert run(text, machine=issue2()).cycles == 5

    def test_branch_terminates_packet(self):
        # independent work after a not-taken branch issues the next cycle
        res = run(
            """
function t:
A:
  blt (r1i r1i) A
  r2i = 1
  halt
""",
            machine=unlimited(), iregs={1: 0},
        )
        # branch at 0; mov at 1; halt at 1 -> 2 cycles
        assert res.cycles == 2

    def test_taken_branch_redirects_next_cycle(self):
        res = run(
            """
function t:
A:
  beq (r1i r1i) T
  r2i = 7
T:
  r3i = 1
  halt
""",
            machine=unlimited(), iregs={1: 0},
        )
        assert 2 not in res.iregs
        assert res.cycles == 2

    def test_waw_completion_order(self):
        # a long op followed by a short op to the same register: the short
        # write must complete after, so it stalls
        res = run(
            """
function t:
A:
  r1i = r2i / r3i
  r1i = 5
  halt
""",
            machine=unlimited(), iregs={2: 10, 3: 2},
        )
        assert res.iregs[1] == 5
        # div at 0 completes at 10; mov must issue at >= 10
        assert res.cycles >= 11

    def test_war_same_cycle_is_free(self):
        # reader and writer of the same register can share a cycle in order
        res = run(
            """
function t:
A:
  r2i = r1i + 1
  r1i = 9
  halt
""",
            machine=unlimited(), iregs={1: 4},
        )
        assert res.iregs[2] == 5
        assert res.iregs[1] == 9
        # all three (including halt) fit in one in-order packet
        assert res.cycles == 1

    def test_slot_limits(self):
        m = MachineConfig(issue_width=8, slot_limits={Kind.FP_ALU: 1})
        text = "function t:\nA:\n" + "\n".join(
            f"  r{k}f = r9f + r9f" for k in range(1, 5)
        ) + "\n  halt\n"
        res = run(text, machine=m, fregs={9: 1.0})
        assert res.cycles == 4  # one fp add per cycle; halt shares the last

    def test_fast_forward_through_stalls(self):
        res = run(
            """
function t:
A:
  r1f = r2f / r3f
  r4f = r1f + r1f
  halt
""",
            machine=issue1(), fregs={2: 8.0, 3: 2.0},
        )
        # div at 0 (lat 10), add at 10, halt at 11 -> 12
        assert res.cycles == 12


class TestMemoryModel:
    def test_column_major_binding(self):
        mem = Memory()
        a = np.arange(6.0).reshape(2, 3)
        mem.bind_array("A", a)
        # column-major flattening: A[0,0], A[1,0], A[0,1], ...
        base = mem.array_base("A")
        assert mem.load(base) == 0.0
        assert mem.load(base + 4) == 3.0
        assert mem.load(base + 8) == 1.0
        back = mem.read_array("A", (2, 3))
        assert np.array_equal(back, a)

    def test_arrays_do_not_overlap(self):
        mem = Memory()
        mem.bind_array("A", np.ones(10))
        mem.bind_array("B", np.zeros(10))
        assert mem.array_base("B") >= mem.array_base("A") + 40

    def test_unaligned_access_rejected(self):
        mem = Memory()
        mem.bind_array("A", np.ones(2))
        with pytest.raises(SimMemoryError):
            mem.load(mem.array_base("A") + 2)
