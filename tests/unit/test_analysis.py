"""Unit tests for the analyses: liveness, memory disambiguation,
dependence graph, loop-variable classification."""

import pytest

from repro.analysis.depgraph import build_depgraph, speculable
from repro.analysis.liveness import live_at_instr_positions, liveness
from repro.analysis.loopvars import (
    find_accumulators,
    find_inductions,
    find_search_variables,
)
from repro.analysis.memdep import AddressAnalysis, may_alias
from repro.ir import Op, fp_reg, int_reg, parse_block, parse_function
from repro.machine import unlimited


def body_of(text):
    return parse_block(text).instrs


class TestLiveness:
    def test_straight_line(self):
        f = parse_function(
            """
function t:
A:
  r1i = 1
  r2i = r1i + 1
  r3i = r2i + r4i
  halt
"""
        )
        lv = liveness(f)
        assert lv.live_in["A"] == {int_reg(4)}

    def test_loop_carried(self):
        f = parse_function(
            """
function t:
L:
  r1i = r1i + 1
  blt (r1i r2i) L
exit:
  halt
"""
        )
        lv = liveness(f)
        assert lv.live_in["L"] == {int_reg(1), int_reg(2)}
        assert int_reg(1) in lv.live_out["L"]

    def test_live_out_exit_respected(self):
        f = parse_function("function t:\nA:\n  r1i = 1\n  halt\n")
        lv = liveness(f, live_out_exit={int_reg(1)})
        assert int_reg(1) in lv.live_out["A"]

    def test_branch_arm_liveness(self):
        f = parse_function(
            """
function t:
A:
  blt (r1i r2i) C
B:
  r3i = r4i + 1
  halt
C:
  r3i = r5i + 1
  halt
"""
        )
        lv = liveness(f)
        assert int_reg(4) in lv.live_in["A"]
        assert int_reg(5) in lv.live_in["A"]
        assert int_reg(5) not in lv.live_in["B"]

    def test_positions_within_block(self):
        instrs = body_of("r1i = r2i + 1\nr3i = r1i + r1i\n")
        live = live_at_instr_positions(instrs, {int_reg(3)})
        assert live[0] == {int_reg(2)}
        assert live[1] == {int_reg(1)}
        assert live[2] == {int_reg(3)}


class TestMemDep:
    def test_different_arrays_independent(self):
        instrs = body_of("MEM(A+r1i) = r2f\nr3f = MEM(B+r1i)\n")
        aa = AddressAnalysis(instrs)
        assert not may_alias(aa.address_expr(0), aa.address_expr(1))

    def test_same_array_same_offset_aliases(self):
        instrs = body_of("MEM(A+r1i) = r2f\nr3f = MEM(A+r1i)\n")
        aa = AddressAnalysis(instrs)
        assert may_alias(aa.address_expr(0), aa.address_expr(1))

    def test_constant_delta_disambiguates(self):
        instrs = body_of(
            "MEM(A+r1i) = r2f\nr1i = r1i + 4\nr3f = MEM(A+r1i)\n"
        )
        aa = AddressAnalysis(instrs)
        assert not may_alias(aa.address_expr(0), aa.address_expr(2))

    def test_zero_delta_through_chain_aliases(self):
        instrs = body_of(
            "r2i = r1i + 4\nMEM(A+r2i) = r4f\nr3i = r1i + 4\nr5f = MEM(A+r3i)\n"
        )
        aa = AddressAnalysis(instrs)
        assert may_alias(aa.address_expr(1), aa.address_expr(3))

    def test_register_offset_conservative(self):
        instrs = body_of("MEM(A+r1i) = r2f\nr3f = MEM(A+r4i)\n")
        aa = AddressAnalysis(instrs)
        assert may_alias(aa.address_expr(0), aa.address_expr(1))

    def test_prologue_lockstep_resolution(self):
        prologue = body_of("r2i = r1i + 4\n")
        instrs = body_of(
            "MEM(A+r1i) = r4f\nMEM(A+r2i) = r5f\nr1i = r1i + 8\nr2i = r2i + 8\n"
        )
        aa = AddressAnalysis(instrs, prologue)
        # r2i = r1i + 4 and both advance by 8 per pass: constant delta 4
        assert not may_alias(aa.address_expr(0), aa.address_expr(1))

    def test_prologue_mismatched_steps_conservative(self):
        prologue = body_of("r2i = r1i + 4\n")
        instrs = body_of(
            "MEM(A+r1i) = r4f\nMEM(A+r2i) = r5f\nr1i = r1i + 8\nr2i = r2i + 12\n"
        )
        aa = AddressAnalysis(instrs, prologue)
        assert may_alias(aa.address_expr(0), aa.address_expr(1))


class TestDepGraph:
    def test_flow_edge_latency(self):
        instrs = body_of("r1f = MEM(A+r2i)\nr3f = r1f + r1f\n")
        g = build_depgraph(instrs, unlimited())
        assert (1, 2) in g.succs[0]  # load latency 2

    def test_anti_edge_zero(self):
        instrs = body_of("r3f = r1f + r2f\nr1f = MEM(A+r4i)\n")
        g = build_depgraph(instrs, unlimited())
        assert (1, 0) in g.succs[0]

    def test_output_edge(self):
        instrs = body_of("r1i = r2i / r3i\nr1i = 5\n")
        g = build_depgraph(instrs, unlimited())
        # div lat 10, mov lat 1: second write must wait 10 - 1 + 1 = 10
        assert (1, 10) in g.succs[0]

    def test_store_load_dependence(self):
        instrs = body_of("MEM(A+r1i) = r2f\nr3f = MEM(A+r1i)\n")
        g = build_depgraph(instrs, unlimited())
        assert (1, 1) in g.succs[0]

    def test_doall_tag_skips_cross_iteration(self):
        instrs = body_of("MEM(A+r1i) = r2f\nr3f = MEM(A+r4i)\n")
        instrs[0].tag = 0
        instrs[1].tag = 1
        g = build_depgraph(instrs, unlimited(), doall=True)
        assert g.succs[0] == []
        g2 = build_depgraph(instrs, unlimited(), doall=False)
        assert (1, 1) in g2.succs[0]

    def test_everything_precedes_terminator(self):
        instrs = body_of(
            "r1f = MEM(A+r2i)\nMEM(B+r2i) = r1f\nblt (r2i r3i) L\n"
        )
        g = build_depgraph(instrs, unlimited())
        assert (2, 0) in g.succs[0]
        assert (2, 0) in g.succs[1]

    def test_store_not_hoisted_above_branch(self):
        instrs = body_of("blt (r1i r2i) L\nMEM(A+r1i) = r3f\n")
        g = build_depgraph(instrs, unlimited(), exit_live={0: set()})
        assert (1, 1) in g.succs[0]

    def test_load_speculated_above_branch(self):
        instrs = body_of("blt (r1i r2i) L\nr3f = MEM(A+r1i)\n")
        g = build_depgraph(instrs, unlimited(), exit_live={0: set()})
        assert g.succs[0] == []

    def test_live_at_target_blocks_speculation(self):
        instrs = body_of("blt (r1i r2i) L\nr3f = MEM(A+r1i)\n")
        g = build_depgraph(instrs, unlimited(), exit_live={0: {fp_reg(3)}})
        assert (1, 1) in g.succs[0]

    def test_may_trap_not_speculated(self):
        instrs = body_of("blt (r1i r2i) L\nr3i = r4i / r5i\n")
        g = build_depgraph(instrs, unlimited(), exit_live={0: set()})
        assert (1, 1) in g.succs[0]

    def test_heights_reflect_critical_path(self):
        instrs = body_of("r1f = r2f * r3f\nr4f = r1f + r5f\nMEM(A+r6i) = r4f\n")
        g = build_depgraph(instrs, unlimited())
        h = g.heights()
        assert h[0] == 7 and h[1] == 4 and h[2] == 1


class TestLoopVars:
    def test_accumulator_detection(self):
        body = body_of(
            "r1f = r1f + r2f\nr1f = r1f + r3f\nblt (r4i r5i) L\n"
        )
        accs = find_accumulators(body)
        assert len(accs) == 1
        assert accs[0].reg == fp_reg(1) and accs[0].kind == "add"

    def test_product_accumulator(self):
        body = body_of("r1f = r1f * r2f\nr1f = r1f * r3f\n")
        accs = find_accumulators(body)
        assert accs and accs[0].kind == "mul"

    def test_non_update_use_disqualifies(self):
        body = body_of(
            "r1f = r1f + r2f\nMEM(A+r4i) = r1f\nr1f = r1f + r3f\n"
        )
        assert find_accumulators(body) == []

    def test_single_update_not_expanded(self):
        body = body_of("r1f = r1f + r2f\n")
        assert find_accumulators(body) == []

    def test_induction_detection(self):
        body = body_of("r1i = r1i + 4\nr1i = r1i + 4\n")
        ivs = find_inductions(body)
        assert len(ivs) == 1 and ivs[0].step == 4

    def test_mixed_steps_disqualify(self):
        body = body_of("r1i = r1i + 4\nr1i = r1i + 8\n")
        assert find_inductions(body) == []

    def test_search_variable_detection(self):
        body = body_of(
            """
            fble (r2f r1f) X
            r1f = r2f
            fble (r3f r1f) Y
            r1f = r3f
            blt (r4i r5i) L
            """
        )
        found = find_search_variables(body)
        assert len(found) == 1 and found[0].reg == fp_reg(1)
        assert len(found[0].pairs) == 2

    def test_search_requires_guard_adjacency(self):
        body = body_of(
            "fble (r2f r1f) X\nr9f = r2f\nr1f = r2f\nfble (r3f r1f) Y\nr1f = r3f\n"
        )
        assert find_search_variables(body) == []
