"""Unit tests for the classical ("Conv") optimizer passes."""

import numpy as np
import pytest

from repro.analysis.loopvars import CountedLoop
from repro.ir import (
    Imm,
    Op,
    format_function,
    fp_reg,
    int_reg,
    parse_function,
    verify_function,
)
from repro.machine import unlimited
from repro.opt.constprop import fold_constant_branches, propagate_constants
from repro.opt.copyprop import (
    coalesce_moves,
    propagate_copies_global,
    propagate_copies_local,
)
from repro.opt.cse import eliminate_common_subexpressions
from repro.opt.dce import eliminate_dead_code
from repro.opt.driver import run_conv
from repro.opt.ivsr import strength_reduce_ivs
from repro.opt.licm import hoist_loop_invariants
from repro.opt.redundant_mem import eliminate_redundant_memory
from repro.sim import Memory, simulate


def f_of(text):
    return parse_function(text)


class TestConstProp:
    def test_fold_chain(self):
        f = f_of("function t:\nA:\n  r1i = 4\n  r2i = r1i + 6\n  r3i = r2i * 2\n  halt\n")
        propagate_constants(f)
        ins = f.get_block("A").instrs
        assert str(ins[2]) == "r3i = 20"

    def test_identities(self):
        f = f_of(
            "function t:\nA:\n  r2i = r1i + 0\n  r3i = r1i * 1\n  r4i = r1i * 0\n  halt\n"
        )
        propagate_constants(f)
        ins = f.get_block("A").instrs
        assert str(ins[0]) == "r2i = r1i"
        assert str(ins[1]) == "r3i = r1i"
        assert str(ins[2]) == "r4i = 0"

    def test_fp_folding(self):
        f = f_of("function t:\nA:\n  r1f = 2.0\n  r2f = r1f * 3.0\n  halt\n")
        propagate_constants(f)
        assert str(f.get_block("A").instrs[1]) == "r2f = 6.0"

    def test_division_by_zero_not_folded(self):
        f = f_of("function t:\nA:\n  r1i = 4\n  r2i = r1i / 0\n  halt\n")
        propagate_constants(f)
        assert f.get_block("A").instrs[1].op is Op.DIV

    def test_fold_constant_branch_taken(self):
        f = f_of("function t:\nA:\n  beq (3 3) C\nB:\n  nop\nC:\n  halt\n")
        assert fold_constant_branches(f) == 1
        assert f.get_block("A").instrs[0].op is Op.JMP

    def test_fold_constant_branch_not_taken(self):
        f = f_of("function t:\nA:\n  beq (3 4) C\nB:\n  nop\nC:\n  halt\n")
        fold_constant_branches(f)
        assert f.get_block("A").instrs == []


class TestCopyProp:
    def test_local(self):
        f = f_of("function t:\nA:\n  r2i = r1i\n  r3i = r2i + 1\n  halt\n")
        propagate_copies_local(f)
        assert str(f.get_block("A").instrs[1]) == "r3i = r1i + 1"

    def test_local_invalidation_on_redefine(self):
        f = f_of(
            "function t:\nA:\n  r2i = r1i\n  r1i = 5\n  r3i = r2i + 1\n  halt\n"
        )
        propagate_copies_local(f)
        # r2i's copy of r1i died when r1i was redefined
        assert str(f.get_block("A").instrs[2]) == "r3i = r2i + 1"

    def test_global_across_blocks(self):
        f = f_of(
            "function t:\nA:\n  r2i = r1i\nB:\n  r3i = r2i + 1\n  halt\n"
        )
        propagate_copies_global(f)
        assert str(f.get_block("B").instrs[0]) == "r3i = r1i + 1"

    def test_coalesce_restores_self_update(self):
        f = f_of(
            "function t:\nA:\n  r2f = r1f + r3f\n  r1f = r2f\n  halt\n"
        )
        assert coalesce_moves(f) == 1
        assert str(f.get_block("A").instrs[0]) == "r1f = r1f + r3f"

    def test_coalesce_blocked_by_interleaved_use(self):
        f = f_of(
            "function t:\nA:\n  r2f = r1f + r3f\n  r4f = r1f + r1f\n  r1f = r2f\n  halt\n"
        )
        # moving the write of r1f above the read of r1f would be wrong
        assert coalesce_moves(f) == 0


class TestCSE:
    def test_reuses_expression(self):
        f = f_of(
            "function t:\nA:\n  r3i = r1i + r2i\n  r4i = r1i + r2i\n  halt\n"
        )
        assert eliminate_common_subexpressions(f) == 1
        assert str(f.get_block("A").instrs[1]) == "r4i = r3i"

    def test_commutative_match(self):
        f = f_of(
            "function t:\nA:\n  r3i = r1i + r2i\n  r4i = r2i + r1i\n  halt\n"
        )
        assert eliminate_common_subexpressions(f) == 1

    def test_redefinition_invalidates(self):
        f = f_of(
            "function t:\nA:\n  r3i = r1i + r2i\n  r1i = 5\n  r4i = r1i + r2i\n  halt\n"
        )
        assert eliminate_common_subexpressions(f) == 0

    def test_protected_instruction_skipped(self):
        f = f_of(
            "function t:\nA:\n  r3i = r1i + 1\n  r1i = r1i + 1\n  halt\n"
        )
        inc = f.get_block("A").instrs[1]
        assert eliminate_common_subexpressions(f, {id(inc)}) == 0


class TestDCE:
    def test_removes_dead_chain(self):
        f = f_of(
            "function t:\nA:\n  r1i = 1\n  r2i = r1i + 1\n  MEM(A) = r3i\n  halt\n"
        )
        assert eliminate_dead_code(f) == 2
        assert len(f.get_block("A").instrs) == 2

    def test_keeps_live_out(self):
        f = f_of("function t:\nA:\n  r1i = 1\n  halt\n")
        assert eliminate_dead_code(f, {int_reg(1)}) == 0

    def test_keeps_store_feeding_chain(self):
        f = f_of(
            "function t:\nA:\n  r1i = 1\n  MEM(A) = r1i\n  halt\n"
        )
        assert eliminate_dead_code(f) == 0


class TestLICM:
    def test_hoists_invariant(self):
        f = f_of(
            """
function t:
pre:
L:
  r3i = r1i * r2i
  r4i = r4i + r3i
  r5i = r5i + 1
  blt (r5i r6i) L
exit:
  halt
"""
        )
        n = hoist_loop_invariants(f)
        assert n == 1
        assert any(ins.op is Op.MUL for ins in f.get_block("pre").instrs)

    def test_does_not_hoist_variant(self):
        f = f_of(
            """
function t:
pre:
L:
  r3i = r5i * r2i
  r5i = r5i + 1
  blt (r5i r6i) L
exit:
  halt
"""
        )
        assert hoist_loop_invariants(f) == 0

    def test_does_not_hoist_load_past_store(self):
        f = f_of(
            """
function t:
pre:
L:
  r3f = MEM(A+r2i)
  MEM(A+r5i) = r3f
  r5i = r5i + 4
  blt (r5i r6i) L
exit:
  halt
"""
        )
        assert hoist_loop_invariants(f) == 0


class TestRedundantMem:
    def test_load_after_load(self):
        f = f_of(
            "function t:\nA:\n  r1f = MEM(A+r2i)\n  r3f = MEM(A+r2i)\n  halt\n"
        )
        assert eliminate_redundant_memory(f) == 1
        assert str(f.get_block("A").instrs[1]) == "r3f = r1f"

    def test_load_after_store_forwards(self):
        f = f_of(
            "function t:\nA:\n  MEM(A+r2i) = r1f\n  r3f = MEM(A+r2i)\n  halt\n"
        )
        assert eliminate_redundant_memory(f) == 1
        assert str(f.get_block("A").instrs[1]) == "r3f = r1f"

    def test_intervening_store_blocks(self):
        f = f_of(
            """
function t:
A:
  r1f = MEM(A+r2i)
  MEM(A+r3i) = r4f
  r5f = MEM(A+r2i)
  halt
"""
        )
        assert eliminate_redundant_memory(f) == 0

    def test_dead_store_removed(self):
        f = f_of(
            "function t:\nA:\n  MEM(A+r2i) = r1f\n  MEM(A+r2i) = r3f\n  halt\n"
        )
        assert eliminate_redundant_memory(f) == 1
        assert len(f.get_block("A").instrs) == 2


class TestIVSR:
    def make_loop(self):
        f = f_of(
            """
function t:
entry:
  r1i = 0
L:
  r2i = r1i * 4
  r3f = MEM(A+r2i)
  MEM(B+r2i) = r3f
  r1i = r1i + 1
  blt (r1i r9i) L
exit:
  halt
"""
        )
        blk = f.get_block("L")
        counted = {
            "L": CountedLoop("L", int_reg(1), 1, int_reg(9), blk.instrs[4], blk.instrs[3])
        }
        return f, counted

    def test_creates_pointer_iv_and_retargets_test(self):
        f, counted = self.make_loop()
        n = strength_reduce_ivs(f, counted)
        assert n >= 1
        # the loop test now runs on the derived (byte-offset) register
        assert counted["L"].step == 4
        assert counted["L"].iv == int_reg(2)
        # and the body no longer multiplies
        assert all(ins.op is not Op.MUL for ins in f.get_block("L").instrs)
        verify_function(f)

    def test_semantics_preserved(self):
        f, counted = self.make_loop()
        strength_reduce_ivs(f, counted)
        eliminate_dead_code(f)
        mem = Memory()
        A = np.arange(1.0, 11.0)
        mem.bind_array("A", A)
        mem.bind_array("B", np.zeros(10))
        simulate(f, unlimited(), mem, iregs={9: 10})
        assert np.array_equal(mem.read_array("B", (10,)), A)


class TestDriver:
    def test_conv_reaches_figure1_shape(self):
        """Naive daxpy lowering must optimize to the 6-instruction loop."""
        from repro.frontend import ArrayDecl, Kernel, Ty, aref, assign, do, var
        from repro.frontend.lower import lower_kernel

        n = 16
        i = var("i")
        k = Kernel(
            "vadd",
            arrays={x: ArrayDecl(Ty.FP, (n,)) for x in "ABC"},
            scalars={},
            body=[do("i", 1, n, [assign(aref("C", i), aref("A", i) + aref("B", i))],
                     kind="doall")],
        )
        lk = lower_kernel(k)
        run_conv(lk.func, lk.counted, lk.live_out_exit)
        inner = lk.func.get_block(lk.inner_header)
        assert len(inner.instrs) == 6
        ops = [ins.op for ins in inner.instrs]
        assert ops.count(Op.LDF) == 2 and ops.count(Op.STF) == 1
        assert Op.MUL not in ops

    def test_conv_is_idempotent(self):
        from repro.workloads import get_workload
        from repro.frontend.lower import lower_kernel

        lk = lower_kernel(get_workload("APS-3").build())
        run_conv(lk.func, lk.counted, lk.live_out_exit)
        before = format_function(lk.func)
        rep = run_conv(lk.func, lk.counted, lk.live_out_exit)
        assert format_function(lk.func) == before
        assert rep.rounds == 1
