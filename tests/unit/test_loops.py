"""Unit tests for dominators, natural-loop discovery, and preheaders."""

import pytest

from repro.ir import parse_function
from repro.ir.loop import (
    dominators,
    ensure_preheader,
    find_loops,
    innermost_loops,
    reverse_postorder,
)

NESTED = """
function t:
entry:
OUT:
  r1i = 0
IN:
  r1i = r1i + 1
  blt (r1i r2i) IN
TAIL:
  r3i = r3i + 1
  blt (r3i r4i) OUT
exit:
  halt
"""


class TestDominators:
    def test_entry_dominates_all(self):
        f = parse_function(NESTED)
        dom = dominators(f)
        for lab in ("OUT", "IN", "TAIL", "exit"):
            assert "entry" in dom[lab]

    def test_linear_chain(self):
        f = parse_function(NESTED)
        dom = dominators(f)
        assert "OUT" in dom["IN"]
        assert "IN" in dom["TAIL"]

    def test_branch_arms_not_dominating_join(self):
        f = parse_function(
            """
function t:
A:
  blt (r1i r2i) C
B:
  jmp D
C:
  nop
D:
  halt
"""
        )
        dom = dominators(f)
        assert "B" not in dom["D"] and "C" not in dom["D"]
        assert "A" in dom["D"]

    def test_reverse_postorder_starts_at_entry(self):
        f = parse_function(NESTED)
        rpo = reverse_postorder(f)
        assert rpo[0] == "entry"
        assert rpo.index("OUT") < rpo.index("IN")


class TestFindLoops:
    def test_nested_loops_found(self):
        f = parse_function(NESTED)
        loops = find_loops(f)
        headers = {l.header for l in loops}
        assert headers == {"OUT", "IN"}

    def test_nesting_relation(self):
        f = parse_function(NESTED)
        loops = {l.header: l for l in find_loops(f)}
        assert loops["IN"].parent is loops["OUT"]
        assert loops["IN"] in loops["OUT"].children
        assert loops["OUT"].depth == 1 and loops["IN"].depth == 2

    def test_innermost(self):
        f = parse_function(NESTED)
        inner = innermost_loops(f)
        assert [l.header for l in inner] == ["IN"]

    def test_loop_blocks_and_latches(self):
        f = parse_function(NESTED)
        loops = {l.header: l for l in find_loops(f)}
        assert loops["IN"].blocks == {"IN"}
        assert loops["IN"].latches == ["IN"]
        assert loops["OUT"].blocks == {"OUT", "IN", "TAIL"}
        assert loops["OUT"].latches == ["TAIL"]

    def test_exit_edges(self):
        f = parse_function(NESTED)
        loops = {l.header: l for l in find_loops(f)}
        assert loops["IN"].exit_edges(f) == [("IN", "TAIL")]

    def test_no_loops(self):
        f = parse_function("function t:\nA:\n  nop\nB:\n  halt\n")
        assert find_loops(f) == []


class TestEnsurePreheader:
    def test_existing_preheader_reused(self):
        f = parse_function(NESTED)
        loops = {l.header: l for l in find_loops(f)}
        ph = ensure_preheader(f, loops["IN"])
        # OUT ends by falling into IN and is its only outside predecessor
        assert ph.label == "OUT"
        assert ensure_preheader(f, loops["IN"]) is ph

    def test_created_when_header_has_many_preds(self):
        f = parse_function(
            """
function t:
A:
  blt (r1i r2i) L
B:
  jmp L
L:
  r1i = r1i + 1
  blt (r1i r3i) L
exit:
  halt
"""
        )
        loop = next(l for l in find_loops(f) if l.header == "L")
        n_before = len(f.blocks)
        ph = ensure_preheader(f, loop)
        assert len(f.blocks) == n_before + 1
        # both outside entries route through the new preheader
        preds = f.predecessors()
        assert set(preds["L"]) == {ph.label, "L"}
        assert f.successors(ph) == ["L"]
