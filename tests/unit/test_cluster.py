"""Cluster-layer tests: ring placement, ownership forwarding,
cross-node single-flight, and steal-on-overload.

The ring tests are pure; the service tests run small in-process
clusters (:class:`~repro.cluster.launch.ThreadCluster` or hand-built
nodes) over real HTTP on localhost.
"""

import hashlib
import threading

import pytest

from repro.cluster.launch import ThreadCluster
from repro.cluster.node import _key_of, serve_node_background
from repro.cluster.ring import HashRing
from repro.service.client import ServiceClient
from repro.service.server import _req_fields

NODES = ("http://n1:1", "http://n2:1", "http://n3:1")


def keys(n: int) -> list[str]:
    return [hashlib.sha256(f"key-{i}".encode()).hexdigest()
            for i in range(n)]


def fields(workload="dotprod", level=4, width=8) -> dict:
    f = _req_fields({"workload": workload, "level": level, "width": width})
    f.pop("timeout")
    return f


# ---------------------------------------------------------------------------
# the ring
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_placement_independent_of_insertion_order(self):
        a = HashRing(NODES)
        b = HashRing(reversed(NODES))
        for k in keys(200):
            assert a.node_for(k) == b.node_for(k)
            assert a.preference(k) == b.preference(k)

    def test_adding_a_node_only_moves_keys_to_it(self):
        """Consistent hashing's contract: growing the ring reassigns
        *only* the keys the new node claims — every moved key moves to
        the newcomer, and the moved fraction is ~K/N."""
        ks = keys(800)
        before = {k: HashRing(NODES).node_for(k) for k in ks}
        grown = HashRing(NODES)
        grown.add("http://n4:1")
        moved = 0
        for k in ks:
            owner = grown.node_for(k)
            if owner != before[k]:
                assert owner == "http://n4:1", \
                    f"{k[:12]} moved between old nodes"
                moved += 1
        # expectation is K/4 = 200; generous bounds absorb vnode noise
        assert 0 < moved < len(ks) // 2

    def test_removing_a_node_only_moves_its_keys(self):
        ks = keys(800)
        full = HashRing(NODES)
        before = {k: full.node_for(k) for k in ks}
        shrunk = HashRing(NODES)
        shrunk.remove(NODES[0])
        for k in ks:
            if before[k] != NODES[0]:
                assert shrunk.node_for(k) == before[k], \
                    f"{k[:12]} moved although its owner survived"
            else:
                assert shrunk.node_for(k) != NODES[0]

    def test_vnodes_spread_load(self):
        counts = {n: 0 for n in NODES}
        ring = HashRing(NODES)
        for k in keys(3000):
            counts[ring.node_for(k)] += 1
        # perfect balance is 1000 each; vnode smoothing keeps every
        # node within a factor of ~2 of fair share
        assert all(400 < c < 1900 for c in counts.values()), counts

    def test_preference_is_owner_first_all_nodes_deterministic(self):
        ring = HashRing(NODES)
        for k in keys(50):
            pref = ring.preference(k)
            assert pref[0] == ring.node_for(k)
            assert sorted(pref) == sorted(NODES)
            assert pref == ring.preference(k)

    def test_empty_ring(self):
        ring = HashRing()
        with pytest.raises(ValueError):
            ring.node_for(keys(1)[0])
        assert ring.preference(keys(1)[0]) == []
        ring.add("http://solo:1")
        assert ring.node_for(keys(1)[0]) == "http://solo:1"

    def test_duplicate_add_and_absent_remove_are_noops(self):
        ring = HashRing(NODES)
        ring.add(NODES[0])
        ring.remove("http://ghost:1")
        assert len(ring) == 3
        assert ring.nodes == sorted(NODES)


# ---------------------------------------------------------------------------
# ownership forwarding (the cross-node single-flight funnel)
# ---------------------------------------------------------------------------


class TestForwarding:
    def test_any_node_serves_any_key_from_the_owner(self, tmp_path):
        with ThreadCluster(n=3, store_root=tmp_path) as tc:
            key = _key_of("run", fields())
            ring = tc.states[0].ring
            owner = ring.node_for(key)
            non_owners = [u for u in tc.urls if u != owner]

            r1 = ServiceClient(non_owners[0], retry=None).run("dotprod")
            assert r1["node"] == owner
            assert r1.get("forwarded") is True
            assert r1["cache"] == "miss"

            # via the *other* non-owner: same artifact, now a hit
            r2 = ServiceClient(non_owners[1], retry=None).run("dotprod")
            assert r2["node"] == owner
            assert r2["cache"] == "hit"
            assert r2["result"] == r1["result"]

            fwd_in = tc.states[tc.urls.index(owner)].counters["forwarded_in"]
            assert fwd_in == 2

    def test_hop_header_is_terminal(self, tmp_path):
        """One node-to-node hop max: a request that already hopped is
        served locally even by a non-owner (no forwarding loops)."""
        with ThreadCluster(n=3, store_root=tmp_path) as tc:
            key = _key_of("run", fields())
            owner = tc.states[0].ring.node_for(key)
            other = [u for u in tc.urls if u != owner][0]
            c = ServiceClient(other, retry=None,
                              headers={"X-Repro-Hop": "route"})
            r = c.run("dotprod")
            assert r["node"] == other  # computed here, not re-forwarded


class TestCrossNodeSingleFlight:
    def test_same_key_via_two_nodes_compiles_once(self, tmp_path):
        """The single-flight guarantee across the fleet: the same key
        submitted concurrently to two *different* nodes funnels into
        the owner's engine and compiles exactly once."""
        with ThreadCluster(n=3, store_root=tmp_path) as tc:
            replies = []
            lock = threading.Lock()

            def submit(url):
                r = ServiceClient(url, retry=None).run("sum", level=4,
                                                       width=8)
                with lock:
                    replies.append(r)

            threads = [threading.Thread(target=submit, args=(u,))
                       for u in tc.urls]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert len(replies) == 3
            results = [r["result"] for r in replies]
            assert results[0] == results[1] == results[2]
            computed = sum(e.counters["computed"] for e in tc.engines)
            assert computed == 1, (
                f"key compiled {computed}x across the fleet")
            # all three served by the owning node
            assert len({r["node"] for r in replies}) == 1


# ---------------------------------------------------------------------------
# steal-on-overload
# ---------------------------------------------------------------------------


def _two_nodes(tmp_path, overloaded_pending=0):
    """An overloaded node A (sheds everything) plus a healthy peer B."""
    a = serve_node_background(store_dir=tmp_path / "a", jobs=1,
                              max_pending=overloaded_pending)
    b = serve_node_background(store_dir=tmp_path / "b", jobs=1)
    urls = [a[3], b[3]]
    for rig in (a, b):
        rig[2].join(urls)
    return a, b


class TestWorkStealing:
    def test_shed_work_is_stolen_by_the_peer(self, tmp_path):
        a, b = _two_nodes(tmp_path)
        try:
            # a config whose key node A owns, so no ownership forward
            # happens before admission control sheds it on A
            cfg = None
            for wl in ("add", "sum", "dotprod", "maxval", "fetch"):
                f = fields(workload=wl)
                if a[2].ring.node_for(_key_of("run", f)) == a[3]:
                    cfg = (wl, f)
                    break
            assert cfg is not None, "no probe workload owned by node A"
            wl, f = cfg
            key = _key_of("run", f)

            r = ServiceClient(a[3], retry=None).run(wl)
            assert r["cache"] == "stolen"
            assert r["stolen_by"] == b[3]
            assert r["result"]["workload"] == wl
            assert a[2].counters["steals_out"] == 1
            assert b[2].counters["steals_in"] == 1
            # the artifact landed on the *owner's* shard, where the
            # ring says it lives
            assert a[1].store.contains(key)
        finally:
            for rig in (a, b):
                rig[0].shutdown()
                rig[1].close()

    def test_steal_request_is_terminal_on_the_peer(self, tmp_path):
        """A stolen computation never cascades: if the thief's peer is
        itself overloaded it sheds (429) instead of re-stealing."""
        a = serve_node_background(store_dir=tmp_path / "a", jobs=1,
                                  max_pending=0)
        b = serve_node_background(store_dir=tmp_path / "b", jobs=1,
                                  max_pending=0)
        urls = [a[3], b[3]]
        for rig in (a, b):
            rig[2].join(urls)
        try:
            from repro.service.client import ServiceOverloaded

            wl = None  # a workload whose key node A owns (direct shed)
            for probe in ("add", "sum", "dotprod", "maxval", "fetch"):
                if a[2].ring.node_for(
                        _key_of("run", fields(workload=probe))) == a[3]:
                    wl = probe
                    break
            assert wl is not None
            with pytest.raises(ServiceOverloaded):
                ServiceClient(a[3], retry=None).run(wl)
            # A offered B the work once; B, saturated, shed it without
            # offering it back — and nobody computed anything
            assert a[2].counters["steals_out"] == 0
            assert b[2].counters["steals_in"] == 1
            assert a[2].counters["steals_in"] == 0
            assert sum(e.counters["computed"] for e in (a[1], b[1])) == 0
        finally:
            for rig in (a, b):
                rig[0].shutdown()
                rig[1].close()
