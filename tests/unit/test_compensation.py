"""Targeted semantics tests for superblock side-exit compensation.

The expansions and renaming rewrite only the superblock; when a side exit
is taken mid-pass, stub blocks must re-materialize the original register
state, and off-trace rejoins must re-establish the expanded state.  These
tests force the off-trace paths to execute *frequently* (adversarial
branch probabilities vs. data) and check exact results.
"""

import numpy as np
import pytest

from repro.frontend import ArrayDecl, Kernel, Ty, aref, assign, do, if_, var
from repro.harness import compile_kernel, run_compiled_kernel
from repro.machine import MachineConfig, issue8
from repro.pipeline import Level

N = 29  # not a multiple of any unroll factor


def run(kernel, arrays, scalars, level, width=8, unroll=None):
    ck = compile_kernel(kernel, level, MachineConfig(issue_width=width),
                        unroll_factor=unroll)
    return ck, run_compiled_kernel(
        ck, arrays={k: np.array(v, dtype=float) for k, v in arrays.items()},
        scalars=scalars,
    )


class TestRenamingCompensation:
    def make(self, p_then):
        i, t = var("i"), var("t")
        return Kernel(
            "k",
            arrays={"A": ArrayDecl(Ty.FP, (N,)), "B": ArrayDecl(Ty.FP, (N,))},
            scalars={"t": Ty.FP, "s": Ty.FP},
            outputs=["s"],
            body=[do("i", 1, N, [
                assign(t, aref("A", i)),
                # the trace believes the update is likely; the data makes
                # the side exit fire every other iteration
                if_(t > 4.0, [assign(var("s"), var("s") + t)], p_then=0.9),
                assign(aref("B", i), t * 2.0),
            ], kind="serial")],
        )

    @pytest.mark.parametrize("level", [Level.LEV2, Level.LEV3])
    def test_frequent_side_exits_stay_correct(self, level):
        A = np.array([float(2 + 6 * (k % 2)) for k in range(N)])  # 2,8,2,8...
        _, out = run(self.make(0.9), {"A": A, "B": np.zeros(N)},
                     {"s": 0.0}, level)
        assert np.isclose(out.scalars["s"], A[A > 4.0].sum())
        assert np.array_equal(out.arrays["B"], A * 2.0)


class TestAccumulatorCompensation:
    def make(self):
        i, t = var("i"), var("t")
        return Kernel(
            "k",
            arrays={"A": ArrayDecl(Ty.FP, (N,))},
            scalars={"t": Ty.FP, "s": Ty.FP},
            outputs=["s"],
            body=[do("i", 1, N, [
                assign(t, aref("A", i)),
                assign(var("s"), var("s") + t),     # expanded accumulator
                if_(t > 90.0, [assign(var("s"), var("s") * 0.0)],
                    p_then=0.05),                  # rare reset, off-trace
            ], kind="serial")],
        )

    def test_offtrace_reads_combined_accumulator(self):
        """The off-trace reset *reads and writes* the accumulator: the
        side-exit stub must combine the temporaries first, and the rejoin
        must re-split them."""
        rng = np.random.default_rng(5)
        A = rng.integers(1, 9, N).astype(float)
        A[10] = 99.0  # one reset fires mid-loop
        expect = 0.0
        for v in A:
            expect += v
            if v > 90.0:
                expect = 0.0
        ck, out = run(self.make(), {"A": A}, {"s": 0.0}, Level.LEV4)
        assert np.isclose(out.scalars["s"], expect)

    def test_every_unroll_factor(self):
        rng = np.random.default_rng(6)
        A = rng.integers(1, 9, N).astype(float)
        for unroll in (2, 3, 5, 8):
            ck, out = run(self.make(), {"A": A}, {"s": 0.0},
                          Level.LEV4, unroll=unroll)
            assert np.isclose(out.scalars["s"], A.sum()), unroll


class TestSearchCompensation:
    def make(self, p_then=0.8):
        i, t = var("i"), var("t")
        return Kernel(
            "k",
            arrays={"A": ArrayDecl(Ty.FP, (N,))},
            scalars={"t": Ty.FP, "m": Ty.FP},
            outputs=["m"],
            body=[do("i", 1, N, [
                assign(t, aref("A", i)),
                if_(t < var("m"), [assign(var("m"), t)], p_then=p_then),
            ], kind="serial")],
        )

    def test_min_with_expansion_and_hostile_data(self):
        """Ascending data: every guard takes the side exit, so the combine
        stub runs constantly."""
        A = np.arange(10.0, 10.0 + N)
        ck, out = run(self.make(), {"A": A}, {"m": 1e9}, Level.LEV4)
        assert out.scalars["m"] == 10.0

    def test_min_descending_data_expansion_fires(self):
        A = np.arange(float(N), 0.0, -1.0)
        ck, out = run(self.make(), {"A": A}, {"m": 1e9}, Level.LEV4)
        assert ck.report.searches == 1
        assert out.scalars["m"] == 1.0

    def test_min_alternating(self):
        rng = np.random.default_rng(9)
        A = rng.permutation(np.arange(1.0, N + 1.0))
        for level in (Level.LEV2, Level.LEV4):
            _, out = run(self.make(), {"A": A}, {"m": 1e9}, level)
            assert out.scalars["m"] == 1.0, level


class TestInductionRejoin:
    def test_expanded_ivs_survive_offtrace_rejoins(self):
        """Array writes use expanded induction pointers; a frequent
        conditional sends control off-trace, where the original pointers
        advance and the rejoin must re-stagger the temporaries."""
        i, t = var("i"), var("t")
        k = Kernel(
            "k",
            arrays={"A": ArrayDecl(Ty.FP, (N,)), "B": ArrayDecl(Ty.FP, (N,))},
            scalars={"t": Ty.FP, "c": Ty.FP},
            body=[do("i", 1, N, [
                assign(t, aref("A", i)),
                if_(t > var("c"), [assign(t, var("c"))], p_then=0.2),
                assign(aref("B", i), t),
            ], kind="doall")],
        )
        rng = np.random.default_rng(11)
        A = rng.integers(1, 9, N).astype(float)
        ck, out = run(k, {"A": A, "B": np.zeros(N)}, {"c": 5.0}, Level.LEV4)
        assert np.array_equal(out.arrays["B"], np.minimum(A, 5.0))
