"""Pinning tests for the canonical configuration identity.

The sweep journal and the artifact store both derive "same
configuration" from :mod:`repro.service.keys`; these tests pin the
properties that make a content address trustworthy: stability across
dict ordering and default-valued fields, and sensitivity to everything
that changes compiled output.
"""

import pytest

from repro.experiments.sweep import _journal_header
from repro.machine import MachineConfig
from repro.passes import PassOptions
from repro.service.keys import (
    CODE_VERSION,
    canonical_json,
    request_identity,
    request_key,
    sweep_header,
    workload_fingerprint,
)


class TestCanonicalJson:
    def test_dict_ordering_is_canonicalized(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_nested_ordering(self):
        x = {"m": {"z": 1, "y": {"q": 3, "p": 4}}}
        y = {"m": {"y": {"p": 4, "q": 3}, "z": 1}}
        assert canonical_json(x) == canonical_json(y)

    def test_no_whitespace(self):
        assert " " not in canonical_json({"a": [1, 2], "b": {"c": 3}})


class TestRequestKeyStability:
    def test_defaults_explicit_or_omitted_same_key(self):
        """Passing every default explicitly must not change the key."""
        implicit = request_key("run", "dotprod", 4, 8)
        explicit = request_key(
            "run", "dotprod", 4, 8, seed=0, check=True, check_ir=False,
            disable=(), machine=MachineConfig(issue_width=8),
        )
        assert implicit == explicit

    def test_disable_order_and_duplicates_normalized(self):
        a = request_key("run", "add", 3, 4, disable=("combine", "strength"))
        b = request_key("run", "add", 3, 4, disable=("strength", "combine"))
        c = request_key("run", "add", 3, 4,
                        disable=("combine", "strength", "combine"))
        assert a == b == c

    def test_key_is_deterministic_across_calls(self):
        assert request_key("run", "sum", 2, 1) == request_key("run", "sum", 2, 1)

    def test_fingerprint_shortcut_matches(self):
        fp = workload_fingerprint("dotprod")
        assert (request_key("run", "dotprod", 4, 8, fingerprint=fp)
                == request_key("run", "dotprod", 4, 8))

    def test_every_field_is_load_bearing(self):
        base = request_key("run", "dotprod", 4, 8)
        assert request_key("compile", "dotprod", 4, 8) != base
        assert request_key("run", "add", 4, 8) != base
        assert request_key("run", "dotprod", 3, 8) != base
        assert request_key("run", "dotprod", 4, 4) != base
        assert request_key("run", "dotprod", 4, 8, seed=1) != base
        assert request_key("run", "dotprod", 4, 8, check=False) != base
        assert request_key("run", "dotprod", 4, 8, check_ir=True) != base
        assert request_key("run", "dotprod", 4, 8, disable=("combine",)) != base

    def test_machine_latencies_are_load_bearing(self):
        from repro.ir.instructions import Kind

        m = MachineConfig(issue_width=8)
        slow = MachineConfig(issue_width=8,
                             latencies={**m.latencies, Kind.FP_MUL: 5})
        assert (request_key("run", "dotprod", 4, 8, machine=slow)
                != request_key("run", "dotprod", 4, 8, machine=m))

    def test_machine_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="issue_width"):
            request_key("run", "dotprod", 4, 8,
                        machine=MachineConfig(issue_width=4))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            request_key("frobnicate", "dotprod", 4, 8)

    def test_identity_has_every_field_present(self):
        """Defaults are filled in, never omitted — adding a new field
        with a default later cannot silently alias old and new keys."""
        ident = request_identity("run", "dotprod", 4, 8)
        assert set(ident) == {"kind", "workload", "level", "width", "seed",
                              "check", "check_ir", "disable", "machine",
                              "schedule_backend"}
        assert set(ident["machine"]) == {
            "issue_width", "branch_slots", "latencies", "slot_limits",
            "speculative_loads", "speculative_fp", "vector_lanes",
        }


class TestWorkloadFingerprint:
    def test_stable_and_distinct(self):
        assert workload_fingerprint("add") == workload_fingerprint("add")
        assert workload_fingerprint("add") != workload_fingerprint("sum")
        assert len(workload_fingerprint("add")) == 64


class TestSweepHeaderSharing:
    def test_journal_header_is_the_shared_identity(self):
        """The journal header is exactly keys.sweep_header plus the
        journal schema version — one definition of 'same sweep'."""
        opts = PassOptions(disable=("strength", "combine"))
        h = _journal_header(seed=3, check=True, check_ir=True, options=opts)
        shared = sweep_header(3, True, True, ("strength", "combine"))
        assert {k: v for k, v in h.items() if k != "version"} == shared
        assert shared["salt"] == CODE_VERSION
        assert shared["disable"] == ["combine", "strength"]

    def test_header_defaults_match_explicit(self):
        assert sweep_header(0, True) == sweep_header(0, True, False, ())

    def test_code_version_in_header(self):
        """Bumping CODE_VERSION must invalidate old journals."""
        assert _journal_header(0, True)["salt"] == CODE_VERSION


class TestEngineDerivedSalt:
    """The store salt is derived from the simulator engine version: an
    engine rewrite cannot forget to invalidate cached run artifacts."""

    def test_salt_embeds_engine_version(self):
        from repro.sim import ENGINE_VERSION

        assert ENGINE_VERSION in CODE_VERSION
        from repro.service.keys import COMPILER_VERSION

        assert CODE_VERSION == f"{COMPILER_VERSION}+{ENGINE_VERSION}"

    def test_old_engine_salt_changes_every_key(self, monkeypatch):
        import repro.service.keys as keys

        new = request_key("run", "add", 3, 4)
        monkeypatch.setattr(keys, "CODE_VERSION", "repro-2026.08-pm3")
        old = request_key("run", "add", 3, 4)
        assert new != old

    def test_artifact_written_under_old_salt_is_a_miss(self, tmp_path):
        from repro.service.store import ArtifactStore

        key = request_key("run", "add", 3, 4)
        writer = ArtifactStore(tmp_path, salt="repro-2026.08-pm3+sim-1-interp")
        assert writer.put(key, {"cycles": 123}) is not None
        assert writer.get(key) == {"cycles": 123}

        reader = ArtifactStore(tmp_path)  # current engine-derived salt
        assert reader.get(key) is None
        assert reader.stats.misses >= 1 or reader.stats.invalidated >= 1
