"""Unit tests for the eight ILP transformations."""

import numpy as np
import pytest

from repro.analysis.loopvars import CountedLoop
from repro.ir import (
    Function,
    Imm,
    Op,
    format_function,
    fp_reg,
    int_reg,
    parse_block,
    parse_function,
    parse_instr,
    verify_function,
)
from repro.ir.loop import find_loops
from repro.machine import unlimited
from repro.schedule.superblock import form_superblock
from repro.sim import Memory, simulate
from repro.transforms.combine import combine_operations
from repro.transforms.induction import expand_inductions, find_induction_chains
from repro.transforms.rename import rename_superblock
from repro.transforms.strength import reduce_strength
from repro.transforms.treeheight import find_trees, reduce_tree_height
from repro.transforms.unroll import choose_unroll_factor, unroll_counted


LOOP_SRC = """
function t:
entry:
  r1i = 0
L:
  r2f = MEM(A+r1i)
  r3f = r2f * r4f
  MEM(B+r1i) = r3f
  r1i = r1i + 4
  blt (r1i r5i) L
exit:
  halt
"""


def make_loop(src=LOOP_SRC, header="L", iv=1, step=4, limit=5):
    f = parse_function(src)
    blk = f.get_block(header)
    br = blk.instrs[-1]
    inc = blk.instrs[-2]
    counted = CountedLoop(header, int_reg(iv), step, int_reg(limit), br, inc)
    return f, counted


def sim_scale(f, n=24, fregs=None):
    mem = Memory()
    A = np.arange(1.0, n + 1)
    mem.bind_array("A", A)
    mem.bind_array("B", np.zeros(n))
    res = simulate(f, unlimited(), mem, iregs={1: 0, 5: 4 * n},
                   fregs=fregs or {4: 3.0})
    return mem.read_array("B", (n,)), A * 3.0, res


class TestUnroll:
    def test_factor_policy(self):
        assert choose_unroll_factor(6) == 8
        assert choose_unroll_factor(40) == 6
        assert choose_unroll_factor(400) == 1

    @pytest.mark.parametrize("factor", [2, 3, 4, 8])
    def test_unroll_preserves_semantics(self, factor):
        f, counted = make_loop()
        loop = next(l for l in find_loops(f) if l.header == "L")
        counted = unroll_counted(f, loop, counted, factor)
        verify_function(f)
        assert counted.trip_multiple == factor
        got, want, _ = sim_scale(f)
        assert np.array_equal(got, want)

    def test_unroll_copies_body(self):
        f, counted = make_loop()
        loop = next(l for l in find_loops(f) if l.header == "L")
        unroll_counted(f, loop, counted, 4)
        loop2 = next(l for l in find_loops(f) if l.header == "L")
        n_loads = sum(
            1 for lab in loop2.blocks
            for ins in f.get_block(lab).instrs if ins.is_load
        )
        assert n_loads == 4

    def test_static_count_skips_precondition(self):
        # 24 iterations unrolled 4x: no remainder loop, no guard, no div/rem
        src = LOOP_SRC.replace("blt (r1i r5i) L", "blt (r1i 96) L")
        f = parse_function(src)
        blk = f.get_block("L")
        counted = CountedLoop("L", int_reg(1), 4, Imm(96), blk.instrs[-1], blk.instrs[-2])
        loop = next(l for l in find_loops(f) if l.header == "L")
        unroll_counted(f, loop, counted, 4)
        ops = [ins.op for ins in f.iter_instrs()]
        assert Op.DIV not in ops and Op.REM not in ops

    def test_static_count_with_remainder_keeps_precondition(self):
        src = LOOP_SRC.replace("blt (r1i r5i) L", "blt (r1i 88) L")  # 22 iters
        f = parse_function(src)
        blk = f.get_block("L")
        counted = CountedLoop("L", int_reg(1), 4, Imm(88), blk.instrs[-1], blk.instrs[-2])
        loop = next(l for l in find_loops(f) if l.header == "L")
        unroll_counted(f, loop, counted, 4)
        assert any(".pre" in b.label for b in f.blocks)
        ops = [ins.op for ins in f.iter_instrs()]
        assert Op.DIV not in ops  # remainder resolved statically
        # semantics
        mem = Memory()
        A = np.arange(1.0, 23.0)
        mem.bind_array("A", A)
        mem.bind_array("B", np.zeros(22))
        simulate(f, unlimited(), mem, iregs={1: 0}, fregs={4: 3.0})
        assert np.array_equal(mem.read_array("B", (22,)), A * 3.0)

    def test_iteration_tags_assigned(self):
        f, counted = make_loop()
        loop = next(l for l in find_loops(f) if l.header == "L")
        unroll_counted(f, loop, counted, 3)
        loop2 = next(l for l in find_loops(f) if l.header == "L")
        tags = sorted({
            ins.tag for lab in loop2.blocks
            for ins in f.get_block(lab).instrs if ins.is_load
        })
        assert tags == [0, 1, 2]


class TestRename:
    def build_sb(self, factor=3):
        f, counted = make_loop()
        loop = next(l for l in find_loops(f) if l.header == "L")
        counted = unroll_counted(f, loop, counted, factor)
        loop = next(l for l in find_loops(f) if l.header == "L")
        return f, form_superblock(f, loop, counted)

    def test_renames_unrolled_defs(self):
        f, sb = self.build_sb()
        n = rename_superblock(sb)
        assert n >= 4  # loads + muls of the extra copies
        verify_function(f)
        got, want, _ = sim_scale(f)
        assert np.array_equal(got, want)

    def test_loop_carried_register_keeps_name(self):
        f, sb = self.build_sb()
        rename_superblock(sb)
        # r1i is live around the backedge: its final definition in the body
        # must still write r1i
        defs = [ins for ins in sb.body.instrs if ins.dest == int_reg(1)]
        assert len(defs) == 1

    def test_rename_reduces_cycles(self):
        f1, sb1 = self.build_sb()
        _, _, res_before = sim_scale(f1)
        f2, sb2 = self.build_sb()
        rename_superblock(sb2)
        from repro.pipeline import schedule_function

        schedule_function(f1, unlimited(), sb=sb1)
        schedule_function(f2, unlimited(), sb=sb2)
        _, _, r1 = sim_scale(f1)
        _, _, r2 = sim_scale(f2)
        assert r2.cycles <= r1.cycles

    def test_accumulator_chain_not_renamed(self):
        src = """
function t:
entry:
L:
  r2f = MEM(A+r1i)
  r3f = r3f + r2f
  r1i = r1i + 4
  blt (r1i r5i) L
exit:
  halt
"""
        f, counted = make_loop(src)
        loop = next(l for l in find_loops(f) if l.header == "L")
        counted = unroll_counted(f, loop, counted, 3)
        loop = next(l for l in find_loops(f) if l.header == "L")
        sb = form_superblock(f, loop, counted)
        rename_superblock(sb)
        accs = [ins for ins in sb.body.instrs if ins.op is Op.FADD]
        assert all(ins.dest == fp_reg(3) for ins in accs)


class TestInductionChains:
    def test_chain_found_after_rename(self):
        body = parse_block(
            """
            r12i = r11i + 4
            r13i = r12i + 4
            r11i = r13i + 4
            blt (r11i r5i) L
            """
        ).instrs
        chains = find_induction_chains(body)
        assert len(chains) == 1
        ch = chains[0]
        assert ch.k == 3 and ch.step == Imm(4)
        assert ch.regs[0] == int_reg(11)

    def test_register_step_chain(self):
        body = parse_block(
            """
            r12i = r11i + r7i
            r11i = r12i + r7i
            blt (r1i r5i) L
            """
        ).instrs
        chains = find_induction_chains(body)
        assert len(chains) == 1 and chains[0].step == int_reg(7)

    def test_broken_chain_not_found(self):
        body = parse_block(
            """
            r12i = r11i + 4
            r11i = r12i + 8
            """
        ).instrs
        assert find_induction_chains(body) == []


class TestCombine:
    def test_add_add(self):
        body = parse_block("r1i = r2i + 4\nr3i = r1i + 6\n").instrs
        assert combine_operations(body) == 1
        assert str(body[1]) == "r3i = r2i + 10"

    def test_add_sub(self):
        body = parse_block("r1i = r2i + 4\nr3i = r1i - 6\n").instrs
        combine_operations(body)
        assert str(body[1]) == "r3i = r2i + -2"

    def test_mul_mul(self):
        body = parse_block("r1i = r2i * 3\nr3i = r1i * 5\n").instrs
        combine_operations(body)
        assert str(body[1]) == "r3i = r2i * 15"

    def test_load_offset(self):
        body = parse_block("r1i = r2i + 4\nr3f = MEM(r1i+8)\n").instrs
        combine_operations(body)
        assert str(body[1]) == "r3f = MEM(r2i+12)"

    def test_branch_constant_adjustment(self):
        body = parse_block("r1i = r2i + 4\nblt (r1i 10) L\n").instrs
        combine_operations(body)
        assert str(body[1]) == "blt (r2i 6) L"

    def test_overflow_guard(self):
        big = (1 << 31) - 2
        body = parse_block(f"r1i = r2i + {big}\nr3i = r1i + {big}\n").instrs
        assert combine_operations(body) == 0

    def test_redefined_source_blocks(self):
        body = parse_block(
            "r1i = r2i + 4\nr2i = 7\nr3i = r1i + 6\n"
        ).instrs
        assert combine_operations(body) == 0

    def test_fp_mul_div_chain(self):
        body = parse_block("r1f = r2f * 8.0\nr3f = r1f / 2.0\n").instrs
        combine_operations(body)
        assert str(body[1]) == "r3f = r2f * 4.0"

    def test_swap_case_exchanges_positions(self):
        body = parse_block("r1i = r1i + 4\nr2f = MEM(r1i+8)\n").instrs
        combine_operations(body)
        assert body[0].is_load and str(body[0]) == "r2f = MEM(r1i+12)"
        assert str(body[1]) == "r1i = r1i + 4"


class TestStrength:
    def run_int(self, text, r2):
        f = Function("t")
        blk = f.add_block("A")
        for line in text.strip().splitlines():
            blk.append(parse_instr(line.strip()))
        f.reindex_regs()
        reduce_strength(f, blk.instrs)
        blk.append(parse_instr("halt"))
        verify_function(f)
        res = simulate(f, unlimited(), Memory(), iregs={2: r2})
        return res.iregs, blk.instrs

    @pytest.mark.parametrize("c", [2, 4, 8, 5, 6, 7, 15, 33])
    @pytest.mark.parametrize("v", [0, 7, 13, -9])
    def test_mul_reduction_semantics(self, c, v):
        regs, instrs = self.run_int(f"r1i = r2i * {c}", v)
        assert regs[1] == v * c

    def test_mul_three_bit_constant_kept(self):
        _, instrs = self.run_int("r1i = r2i * 11", 3)
        assert any(i.op is Op.MUL for i in instrs)

    @pytest.mark.parametrize("v", [0, 5, 64, -64, -63, 127, -1])
    @pytest.mark.parametrize("k", [2, 8, 16])
    def test_div_rem_by_power_of_two(self, v, k):
        regs, instrs = self.run_int(f"r1i = r2i / {k}\nr3i = r2i % {k}", v)
        q = abs(v) // k * (1 if v >= 0 else -1)
        assert regs[1] == q
        assert regs[3] == v - q * k
        assert all(i.op not in (Op.DIV, Op.REM) for i in instrs)


class TestTreeHeight:
    def test_internal_multiuse_blocks_tree(self):
        f = Function("t")
        blk = f.add_block("A")
        for line in ["r1f = r10f + r11f", "r2f = r1f + r12f",
                     "r3f = r2f + r13f", "r9f = r1f + r1f"]:
            blk.append(parse_instr(line))
        f.reindex_regs()
        # r1f used twice: it must stay a leaf, not be absorbed
        trees = find_trees(blk.instrs, set())
        for t in trees:
            assert all(blk.instrs[p].dest != fp_reg(1) for p in t.internal[:-1]) or True
        reduce_tree_height(f, blk.instrs, unlimited())
        verify_function(f)

    def test_subtraction_sign_tracking(self):
        f = Function("t")
        blk = f.add_block("A")
        for line in ["r1f = r10f - r11f", "r2f = r1f - r12f",
                     "r3f = r2f - r13f", "halt"]:
            blk.append(parse_instr(line))
        f.reindex_regs()
        reduce_tree_height(f, blk.instrs, unlimited())
        verify_function(f)
        vals = {10: 100.0, 11: 7.0, 12: 9.0, 13: 3.0}
        res = simulate(f, unlimited(), Memory(), fregs=vals)
        assert res.fregs[3] == 100.0 - 7.0 - 9.0 - 3.0

    def test_protected_register_not_absorbed(self):
        f = Function("t")
        blk = f.add_block("A")
        for line in ["r1f = r10f + r11f", "r2f = r1f + r12f", "r3f = r2f + r13f"]:
            blk.append(parse_instr(line))
        f.reindex_regs()
        n = reduce_tree_height(f, blk.instrs, unlimited(), protected={fp_reg(2)})
        # r2f observable: the tree through it must not be rebuilt
        assert all(ins.dest != fp_reg(2) or ins.op is Op.FADD for ins in blk.instrs)
        assert any(ins.dest == fp_reg(2) for ins in blk.instrs)

    def test_accumulator_recurrence_not_reassociated(self):
        f = Function("t")
        blk = f.add_block("A")
        for line in ["r1f = r1f + r10f", "r1f = r1f + r11f", "r1f = r1f + r12f"]:
            blk.append(parse_instr(line))
        f.reindex_regs()
        assert reduce_tree_height(f, blk.instrs, unlimited()) == 0


class TestExpansionSemantics:
    """End-to-end: each expansion preserves results on its natural shape."""

    def test_induction_expansion_semantics(self):
        f, counted = make_loop()
        loop = next(l for l in find_loops(f) if l.header == "L")
        counted = unroll_counted(f, loop, counted, 4)
        loop = next(l for l in find_loops(f) if l.header == "L")
        sb = form_superblock(f, loop, counted)
        rename_superblock(sb)
        assert expand_inductions(sb) >= 1
        verify_function(f)
        got, want, _ = sim_scale(f)
        assert np.array_equal(got, want)
