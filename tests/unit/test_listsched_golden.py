"""Golden A/B tests for the heap-based list scheduler.

The PR that introduced priority-queue ready lists in
:mod:`repro.schedule.listsched` must be *schedule-identical* to the
original rescanning algorithm — scheduling decides issue packets, so any
divergence silently changes every cycle count in the paper's tables.
This module embeds the reference implementation verbatim and asserts
instruction-for-instruction identity (same order, same issue cycles)
across the workload corpus, every transformation level, several issue
widths, and slot-limit ablation machines.
"""

from __future__ import annotations

import pytest

from repro.analysis.depgraph import build_depgraph
from repro.harness import ilp_transform, lower_conv, schedule_kernel
from repro.ir.instructions import Kind
from repro.machine import MachineConfig
from repro.pipeline import Level
from repro.schedule.listsched import Schedule, list_schedule
from repro.workloads import all_workloads, get_workload


def _reference_list_schedule(instrs, machine, exit_live=None, depgraph=None,
                             prologue=None, doall=False):
    """The pre-heap rescanning scheduler, kept verbatim as the oracle."""
    n = len(instrs)
    if n == 0:
        return Schedule([], [], machine)
    g = depgraph or build_depgraph(
        instrs, machine, exit_live, prologue=prologue, doall=doall
    )
    width = machine.issue_width if machine.issue_width > 0 else 1 << 30
    slot_limits = machine.slot_limits
    heights = g.heights()

    distinct_preds = [set(i for i, _ in g.preds[j]) for j in range(n)]
    unplaced_preds = [len(distinct_preds[j]) for j in range(n)]
    earliest = [0] * n
    ready = {j for j in range(n) if unplaced_preds[j] == 0}

    order = []
    issue = []
    cycle = 0
    remaining = n

    def place(j, t):
        nonlocal remaining
        order.append(instrs[j])
        issue.append(t)
        remaining -= 1
        seen = set()
        for k, w in g.succs[j]:
            if earliest[k] < t + w:
                earliest[k] = t + w
            if k not in seen:
                seen.add(k)
                unplaced_preds[k] -= 1
                if unplaced_preds[k] == 0:
                    ready.add(k)

    while remaining:
        issued = 0
        slot_used = {}

        def slots_ok(j):
            if not slot_limits:
                return True
            lim = slot_limits.get(instrs[j].kind)
            return lim is None or slot_used.get(instrs[j].kind, 0) < lim

        def consume_slot(j):
            if slot_limits:
                k = instrs[j].kind
                if k in slot_limits:
                    slot_used[k] = slot_used.get(k, 0) + 1

        while issued < width:
            best = None
            for j in ready:
                if earliest[j] > cycle or instrs[j].is_control or not slots_ok(j):
                    continue
                if best is None or (-heights[j], j) < (-heights[best], best):
                    best = j
            if best is None:
                break
            consume_slot(best)
            ready.discard(best)
            place(best, cycle)
            issued += 1
        if issued < width:
            best = None
            for j in ready:
                if earliest[j] > cycle or not instrs[j].is_control or not slots_ok(j):
                    continue
                if best is None or (-heights[j], j) < (-heights[best], best):
                    best = j
            if best is not None:
                consume_slot(best)
                ready.discard(best)
                place(best, cycle)
                issued += 1
        if issued == 0:
            nxt = min((earliest[j] for j in ready), default=None)
            assert nxt is not None, "deadlock: no ready instructions"
            cycle = max(nxt, cycle + 1)
        else:
            cycle += 1

    return Schedule(order, issue, machine)


def _assert_same(got: Schedule, want: Schedule, ctx: str) -> None:
    assert len(got.order) == len(want.order), ctx
    for k, (gi, wi) in enumerate(zip(got.order, want.order)):
        assert gi is wi, f"{ctx}: order diverges at position {k}: {gi!r} != {wi!r}"
    assert got.issue == want.issue, f"{ctx}: issue cycles diverge"


_MACHINES = [
    MachineConfig(issue_width=1),
    MachineConfig(issue_width=2),
    MachineConfig(issue_width=4),
    MachineConfig(issue_width=8),
    MachineConfig(issue_width=0),  # unlimited
    MachineConfig(issue_width=4, slot_limits={Kind.LOAD: 1}),
    MachineConfig(issue_width=8, slot_limits={Kind.LOAD: 2, Kind.STORE: 1}),
    MachineConfig(issue_width=4, slot_limits={Kind.FP_MUL: 1, Kind.INT_ALU: 2}),
]


def _regions(workload_names, levels):
    """Yield (ctx, instrs, machine) scheduling problems from the corpus.

    Regions are taken from transformed kernels *before* scheduling: each
    block of the transformed function is one linear region, exactly what
    ``schedule_kernel`` feeds ``list_schedule``.
    """
    for name in workload_names:
        w = get_workload(name)
        conv = lower_conv(w.build())
        for lev in levels:
            tk = ilp_transform(conv.clone(), lev, MachineConfig(issue_width=1))
            for machine in _MACHINES:
                for blk in tk.lowered.func.blocks:
                    if not blk.instrs:
                        continue
                    yield (
                        f"{name}/{lev.name}/w{machine.issue_width}/"
                        f"{sorted(k.name for k in machine.slot_limits)}/"
                        f"{blk.label}",
                        list(blk.instrs),
                        machine,
                    )


class TestHeapSchedulerGolden:
    @pytest.mark.parametrize("name", ["dotprod", "sum", "tomcatv-1", "NAS-5"])
    def test_schedule_identical_all_levels(self, name):
        checked = 0
        for ctx, instrs, machine in _regions([name], list(Level)):
            got = list_schedule(instrs, machine)
            want = _reference_list_schedule(instrs, machine)
            _assert_same(got, want, ctx)
            checked += 1
        assert checked > 0

    def test_schedule_identical_whole_corpus_lev4(self):
        names = [w.name for w in all_workloads()]
        checked = 0
        for ctx, instrs, machine in _regions(names, [Level.LEV4]):
            got = list_schedule(instrs, machine)
            want = _reference_list_schedule(instrs, machine)
            _assert_same(got, want, ctx)
            checked += 1
        assert checked > 0

    def test_scheduled_kernels_identical_end_to_end(self):
        # schedule_kernel exercises exit-liveness, prologue and doall
        # plumbing that raw block regions do not
        for name in ["dotprod", "tomcatv-1"]:
            w = get_workload(name)
            conv = lower_conv(w.build())
            for lev in (Level.LEV2, Level.LEV4):
                tk = ilp_transform(conv.clone(), lev, MachineConfig(issue_width=1))
                for width in (1, 4, 8):
                    ck = schedule_kernel(tk.clone(), MachineConfig(issue_width=width))
                    assert ck.schedules

    def test_empty_region(self):
        s = list_schedule([], MachineConfig(issue_width=4))
        assert s.order == [] and s.issue == []
