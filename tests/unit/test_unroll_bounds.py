"""Preconditioning boundary regressions for loop unrolling.

The preconditioned main loop runs with its intermediate backedge tests
removed, so the setup arithmetic must compute the *exact* do-while trip
count — ceil(span/step) — for every combination of step, span, and
factor.  These tests pin the boundaries: non-unit steps with inexact
spans (the floor-vs-ceil miscompile), runtime trip counts below the
factor, exact multiples, statically-known spans, and non-positive spans.
"""

import numpy as np
import pytest

from repro.analysis.loopvars import CountedLoop
from repro.ir import Imm, Op, int_reg, parse_function, verify_function
from repro.ir.loop import find_loops
from repro.machine import unlimited
from repro.sim import Memory, simulate
from repro.transforms.unroll import unroll_counted

LOOP_SRC = """
function t:
entry:
  r1i = 0
L:
  r2f = MEM(A+r1i)
  r3f = r2f * r4f
  MEM(B+r1i) = r3f
  r1i = r1i + 4
  blt (r1i r5i) L
exit:
  halt
"""


def make_loop(src=LOOP_SRC, step=4, limit=int_reg(5)):
    f = parse_function(src)
    blk = f.get_block("L")
    counted = CountedLoop("L", int_reg(1), step, limit, blk.instrs[-1],
                          blk.instrs[-2])
    loop = next(l for l in find_loops(f) if l.header == "L")
    return f, loop, counted


def run_scale(f, n, limit=None):
    """Simulate the scale-by-3 loop over n elements; returns (got, want)."""
    mem = Memory()
    a = np.arange(1.0, n + 1)
    mem.bind_array("A", a)
    mem.bind_array("B", np.zeros(n))
    iregs = {1: 0}
    if limit is not None:
        iregs[5] = limit
    simulate(f, unlimited(), mem, iregs=iregs, fregs={4: 3.0})
    return mem.read_array("B", (n,)), a * 3.0


class TestDynamicPreconditioning:
    @pytest.mark.parametrize("factor", [2, 3, 4, 8])
    @pytest.mark.parametrize("trips", [1, 2, 3, 4, 5, 7, 8, 9, 16, 21])
    def test_nonunit_step_inexact_span(self, factor, trips):
        # limit = 4*trips - 2 is NOT a multiple of step 4: the do-while
        # trip count is ceil(span/step) = trips, and a truncating divide
        # here once undercounted it, leaving the test-free main loop to
        # overrun the arrays
        f, loop, counted = make_loop()
        unroll_counted(f, loop, counted, factor)
        verify_function(f)
        got, want = run_scale(f, trips, limit=4 * trips - 2)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("trips", [1, 2, 3, 4, 5, 8, 12, 24])
    def test_exact_multiple_span(self, trips):
        f, loop, counted = make_loop()
        unroll_counted(f, loop, counted, 4)
        got, want = run_scale(f, trips, limit=4 * trips)
        assert np.array_equal(got, want)

    def test_trip_count_below_factor(self):
        # 3 runtime iterations under factor 8: everything happens in the
        # precondition loop and the guard must skip the main loop entirely
        f, loop, counted = make_loop()
        unroll_counted(f, loop, counted, 8)
        got, want = run_scale(f, 3, limit=12)
        assert np.array_equal(got, want)

    def test_unit_step_emits_no_bias(self):
        # step == 1 divides exactly: the ceil bias must not be emitted, so
        # unit-step loops keep their existing setup code (and schedules)
        src = LOOP_SRC.replace("r1i = r1i + 4", "r1i = r1i + 1")
        f, loop, counted = make_loop(src, step=1)
        unroll_counted(f, loop, counted, 4)
        setup = next(b for b in f.blocks if ".setup" in b.label)
        assert [i.op for i in setup.instrs] == [
            Op.SUB, Op.DIV, Op.REM, Op.MUL, Op.ADD, Op.BEQ,
        ]

    def test_nonunit_step_emits_ceil_bias(self):
        f, loop, counted = make_loop()
        unroll_counted(f, loop, counted, 4)
        setup = next(b for b in f.blocks if ".setup" in b.label)
        assert [i.op for i in setup.instrs] == [
            Op.SUB, Op.ADD, Op.DIV, Op.REM, Op.MUL, Op.ADD, Op.BEQ,
        ]


class TestStaticPreconditioning:
    def _static(self, limit_imm: int, step=4):
        src = LOOP_SRC.replace("blt (r1i r5i) L", f"blt (r1i {limit_imm}) L")
        return make_loop(src, step=step, limit=Imm(limit_imm))

    def test_inexact_span_resolves_statically(self):
        # span 90 with step 4: 23 trips (ceil), known at compile time, so
        # no runtime div/rem arithmetic may appear
        f, loop, counted = self._static(90)
        unroll_counted(f, loop, counted, 4)
        ops = [ins.op for ins in f.iter_instrs()]
        assert Op.DIV not in ops and Op.REM not in ops
        got, want = run_scale(f, 23)
        assert np.array_equal(got, want)

    def test_exact_span_no_remainder_loop(self):
        f, loop, counted = self._static(96)  # 24 trips, factor 4
        unroll_counted(f, loop, counted, 4)
        assert not any(".pre" in b.label for b in f.blocks)
        got, want = run_scale(f, 24)
        assert np.array_equal(got, want)

    def test_static_trip_below_factor_clamps(self):
        f, loop, counted = self._static(12)  # 3 trips < factor 8
        c2 = unroll_counted(f, loop, counted, 8)
        assert c2.trip_multiple == 3  # clamped to the whole trip count
        got, want = run_scale(f, 3)
        assert np.array_equal(got, want)

    def test_nonpositive_span_left_alone(self):
        # limit 0 with iv0 = 0: the do-while body still executes once;
        # unrolling must refuse rather than emit a main loop for it
        f, loop, counted = self._static(0)
        before = len(f.blocks)
        c2 = unroll_counted(f, loop, counted, 4)
        assert c2 is counted and len(f.blocks) == before
        got, _ = run_scale(f, 1)
        assert got[0] == 3.0  # one iteration ran
