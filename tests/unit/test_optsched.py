"""Unit tests for the exact-scheduling backend (repro.optsched).

Covers the solver core (determinism, incumbent tie-break, edge cases),
the block scheduler's contract against the heuristic, the exact modulo
scheduler's bound sandwich, the solver cache, the pass-manager backend
switch, and end-to-end semantic equality between backends.
"""

import pytest

from repro.harness import compile_kernel, run_compiled_kernel, schedule_kernel
from repro.harness import ilp_transform, lower_conv
from repro.ir import parse_block
from repro.ir.instructions import Kind
from repro.machine import MachineConfig, issue1, issue2, issue8
from repro.optsched import (
    DEFAULT_BUDGET,
    Incumbent,
    SchedProblem,
    lower_bound,
    minimize_makespan,
    modulo_schedule,
    optimal_block_schedule,
    verify_assignment,
)
from repro.optsched.cache import problem_key
from repro.pipeline import Level
from repro.schedule.pipelining import compute_bounds
from repro.service.store import ArtifactStore
from repro.workloads import get_workload


def _chain(n, lat=1, width=0):
    """A serial dependence chain: only one legal order."""
    return SchedProblem(
        latency=(lat,) * n,
        is_branch=(False,) * n,
        kind=("",) * n,
        edges=tuple((i, i + 1, lat) for i in range(n - 1)),
        width=width,
    )


class TestSolverCore:
    def test_single_instruction(self):
        p = _chain(1)
        out = minimize_makespan(p, 1)
        assert out.optimal and out.cost == 1

    def test_chain_is_critical_path_bound(self):
        p = _chain(5, lat=2)
        out = minimize_makespan(p, 10)
        assert out.optimal and out.cost == 10 == lower_bound(p)

    def test_width_bound_independent_ops(self):
        # 8 independent unit ops at width 2: ceil(8/2) cycles
        p = SchedProblem(latency=(1,) * 8, is_branch=(False,) * 8,
                        kind=("",) * 8, edges=(), width=2)
        out = minimize_makespan(p, 8)
        assert out.optimal and out.cost == 4
        verify_assignment(p, out.assignment)

    def test_slot_limited_kind(self):
        # 4 loads, load unit limited to 1/cycle, width unlimited
        p = SchedProblem(latency=(1,) * 4, is_branch=(False,) * 4,
                        kind=("LOAD",) * 4, edges=(), width=0,
                        slot_limits=(("LOAD", 1),))
        out = minimize_makespan(p, 4)
        assert out.optimal and out.cost == 4

    def test_branch_slot(self):
        # two branches cannot share a cycle
        p = SchedProblem(latency=(1, 1), is_branch=(True, True),
                        kind=("", ""), edges=(), width=0)
        out = minimize_makespan(p, 2)
        assert out.optimal and out.cost == 2

    def test_timeout_returns_heuristic_incumbent(self):
        p = SchedProblem(latency=(1,) * 12, is_branch=(False,) * 12,
                        kind=("",) * 12, edges=(), width=3)
        ub = tuple(i // 3 for i in range(12))
        out = minimize_makespan(p, 5, ub, budget=1)
        assert out.status == "timeout-incumbent" and not out.optimal
        assert out.cost == 5 and out.assignment == ub

    def test_deterministic_under_timeout(self):
        # identical (problem, budget) -> bit-identical outcome, replayed
        p = SchedProblem(
            latency=(2, 1, 3, 1, 2, 1, 1, 2), is_branch=(False,) * 8,
            kind=("A", "B", "A", "B", "A", "B", "A", "B"),
            edges=((0, 4, 2), (1, 5, 1), (2, 6, 3)),
            width=2, slot_limits=(("A", 1), ("B", 1)),
        )
        runs = [minimize_makespan(p, 12, tuple(range(0, 16, 2)), budget=40)
                for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]

    def test_incumbent_equal_cost_keeps_first(self):
        inc = Incumbent(10, (0, 1))
        assert inc.offer(9, (1, 2))            # strict improvement
        assert not inc.offer(9, (9, 9))        # tie: first discovery wins
        assert inc.assignment == (1, 2)
        assert not inc.offer(11, (0, 0))       # worse never displaces
        assert inc.cost == 9


class TestBlockScheduler:
    def _body(self):
        return parse_block(
            """
            r1f = MEM(A+r2i)
            r3f = r1f * r4f
            MEM(B+r2i) = r3f
            r2i = r2i + 4
            blt (r2i r5i) L
            """
        ).instrs

    @pytest.mark.parametrize("machine", [
        issue1(), issue2(), issue8(),
        MachineConfig(issue_width=2, slot_limits={Kind.LOAD: 1}),
        MachineConfig(issue_width=4,
                      slot_limits={Kind.FP_MUL: 1, Kind.INT_ALU: 2}),
    ])
    def test_never_worse_and_verified(self, machine):
        res = optimal_block_schedule(self._body(), machine)
        assert res.optimal_makespan <= res.heuristic_makespan
        assert res.schedule.makespan == res.optimal_makespan
        assert res.status in ("optimal", "timeout-incumbent")

    def test_single_instruction_block(self):
        body = parse_block("r1i = r2i + 1").instrs
        res = optimal_block_schedule(body, issue8())
        assert res.optimal and res.status == "optimal"
        assert res.schedule.order == body

    def test_zero_budget_keeps_heuristic_verbatim(self):
        from repro.schedule.listsched import list_schedule

        body = self._body()
        heur = list_schedule(body, issue2())
        res = optimal_block_schedule(body, issue2(), budget=1)
        # the anytime fallback is the *same object order* as the heuristic
        assert [id(i) for i in res.schedule.order] \
            == [id(i) for i in heur.order]
        assert res.schedule.issue == heur.issue

    def test_corpus_improvement_is_found_and_proved(self):
        # merge at Lev4/issue-8: greedy list scheduling emits a 12-cycle
        # superblock body; the solver proves 11 is achievable and minimal.
        # Pinned: this is the regression test that the backend actually
        # finds headroom when it exists.
        tk = ilp_transform(lower_conv(get_workload("merge").build()),
                           Level.LEV4, issue8())
        ck_h = schedule_kernel(tk.clone(), issue8())
        ck_o = schedule_kernel(tk, issue8(), scheduler="optimal")
        assert ck_h.inner_makespan == 12
        assert ck_o.inner_makespan == 11
        body = ck_o.report.optsched[ck_o.sb.body.label]
        assert body["status"] == "optimal" and body["proved_lb"] == 11


class TestModuloScheduler:
    def _compiled(self, name, level=Level.LEV4):
        w = get_workload(name)
        ck = compile_kernel(w.build(), level, issue8())
        return w, ck

    def _modulo(self, name, level=Level.LEV4, **kw):
        w, ck = self._compiled(name, level)
        return ck, modulo_schedule(
            ck.sb.body.instrs, issue8(),
            iterations=ck.report.unroll_factor,
            prologue=ck.sb.preheader.instrs,
            doall=w.loop_type == "doall", **kw,
        )

    def test_ii_sandwich(self):
        for name in ("add", "sum", "dotprod", "LWS-1", "NAS-4"):
            ck, ms = self._modulo(name)
            assert ms.bounds.mii <= ms.ii <= ms.acyclic_makespan, name
            assert ms.optimal == (ms.ii == ms.bounds.mii), name

    def test_recmii_dominated_loop(self):
        # LWS-1's memory recurrence: RecMII > ResMII, and no schedule can
        # beat the dataflow bound -- the exact search must prove it met
        ck, ms = self._modulo("LWS-1")
        assert ms.bounds.rec_mii > ms.bounds.res_mii
        assert ms.status == "optimal" and ms.ii == ms.bounds.rec_mii

    def test_reduction_pipelines_below_acyclic(self):
        # dotprod Lev4: the acyclic schedule cannot reach MII, the
        # modulo schedule can (proved) -- real pipelining headroom
        ck, ms = self._modulo("dotprod")
        assert ms.status == "optimal"
        assert ms.ii < ms.acyclic_makespan

    def test_kernel_rows_cover_body(self):
        ck, ms = self._modulo("sum")
        rows = ms.kernel_rows()
        assert len(rows) == ms.ii
        flat = [i for row in rows for i, _ in row]
        assert sorted(flat) == list(range(len(ck.sb.body.instrs)))
        assert ms.prologue_cycles == (ms.stages - 1) * ms.ii

    def test_timeout_falls_back_to_acyclic(self):
        ck, ms = self._modulo("NAS-1", budget=1)
        assert ms.status == "timeout-incumbent"
        assert ms.ii == ms.acyclic_makespan


class TestSolverCache:
    def test_block_cache_hit_is_byte_equivalent(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        body = parse_block(
            """
            r1f = MEM(A+r2i)
            r3f = r1f + r4f
            MEM(B+r2i) = r3f
            r2i = r2i + 4
            blt (r2i r5i) L
            """
        ).instrs
        cold = optimal_block_schedule(body, issue2(), store=store)
        warm = optimal_block_schedule(body, issue2(), store=store)
        assert not cold.cached and warm.cached
        assert warm.optimal_makespan == cold.optimal_makespan
        assert warm.status == cold.status and warm.nodes == cold.nodes
        assert [id(a) for a in warm.schedule.order] \
            == [id(a) for a in cold.schedule.order]

    def test_modulo_cache_hit(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        w = get_workload("sum")
        ck = compile_kernel(w.build(), Level.LEV4, issue8())
        kw = dict(iterations=ck.report.unroll_factor,
                  prologue=ck.sb.preheader.instrs,
                  doall=w.loop_type == "doall", store=store)
        cold = modulo_schedule(ck.sb.body.instrs, issue8(), **kw)
        warm = modulo_schedule(ck.sb.body.instrs, issue8(), **kw)
        assert not cold.cached and warm.cached
        assert (warm.ii, warm.status, warm.times) \
            == (cold.ii, cold.status, cold.times)

    def test_budget_is_part_of_the_key(self):
        p = _chain(3)
        assert problem_key(p, 100) != problem_key(p, 200)
        assert problem_key(p, 100) == problem_key(p, 100)


class TestBackendSwitch:
    def test_dispatch_runs_exactly_one_backend(self):
        ck = compile_kernel(get_workload("add").build(), Level.LEV4,
                            issue8(), scheduler="optimal")
        names = [s.name for s in ck.report.stats if s.phase == "schedule"]
        assert names == ["optsched"]
        assert ck.report.optsched  # proof records present
        ck = compile_kernel(get_workload("add").build(), Level.LEV4, issue8())
        names = [s.name for s in ck.report.stats if s.phase == "schedule"]
        assert names == ["listsched"]
        assert not ck.report.optsched

    def test_lev5_vector_kinds(self):
        # Lev5 SLP emits VEC_* instructions; the solver must handle their
        # latencies/kinds and the verifier must accept the result
        ck = compile_kernel(get_workload("add").build(), Level.LEV5,
                            issue8(), scheduler="optimal", check=True)
        assert ck.report.slp > 0
        assert all(p["status"] in ("optimal", "timeout-incumbent")
                   for p in ck.report.optsched.values())

    def test_end_states_bit_identical_across_backends(self):
        for name in ("dotprod", "merge", "LWS-1"):
            w = get_workload(name)
            tk = ilp_transform(lower_conv(w.build()), Level.LEV4, issue8())
            ck_h = schedule_kernel(tk.clone(), issue8())
            ck_o = schedule_kernel(tk, issue8(), scheduler="optimal",
                                   check=True)
            arrays, scalars = w.make_inputs(0)
            rh = run_compiled_kernel(ck_h, arrays=arrays, scalars=scalars)
            ro = run_compiled_kernel(ck_o, arrays=arrays, scalars=scalars)
            import numpy as np

            for k in rh.arrays:
                assert np.array_equal(rh.arrays[k], ro.arrays[k]), (name, k)
            assert rh.scalars == ro.scalars, name
            assert ro.cycles <= rh.cycles * 1.05, name

    def test_oracle_passes_under_optimal_backend(self):
        from repro.check.oracle import check_workload

        w = get_workload("dotprod")
        checked, divs = check_workload(
            w, levels=(Level.CONV, Level.LEV4), widths=(8,),
            check_ir=True, scheduler="optimal",
        )
        assert checked == 2 and not divs


class TestServiceKeys:
    def test_schedule_backend_in_identity(self):
        from repro.service.keys import request_identity, request_key

        base = request_key("run", "dotprod", 4, 8)
        assert request_key("run", "dotprod", 4, 8,
                           schedule_backend="optimal") != base
        assert request_key("run", "dotprod", 4, 8,
                           schedule_backend="list") == base
        ident = request_identity("run", "dotprod", 4, 8)
        assert ident["schedule_backend"] == "list"
        with pytest.raises(ValueError):
            request_identity("run", "dotprod", 4, 8,
                             schedule_backend="greedy")
