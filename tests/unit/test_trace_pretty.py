"""Unit tests for the execution trace renderer and the FORTRAN-style
kernel pretty printer."""

import numpy as np

from repro.frontend import ArrayDecl, Kernel, Ty, aref, assign, do, flt, if_, var
from repro.frontend.pretty import expr_str, kernel_str
from repro.ir import parse_function
from repro.machine import issue2, unlimited
from repro.sim import Memory, render_packets, render_pipeline, simulate


class TestTrace:
    def run_traced(self, machine):
        f = parse_function(
            """
function t:
entry:
  r1i = 0
L:
  r2f = MEM(A+r1i)
  r3f = r2f * r4f
  MEM(B+r1i) = r3f
  r1i = r1i + 4
  blt (r1i 16) L
exit:
  halt
"""
        )
        mem = Memory()
        mem.bind_array("A", np.arange(1.0, 5.0))
        mem.bind_array("B", np.zeros(4))
        trace: list = []
        res = simulate(f, machine, mem, fregs={4: 2.0}, trace=trace)
        return res, trace

    def test_trace_covers_all_instructions(self):
        res, trace = self.run_traced(unlimited())
        assert len(trace) == res.instructions

    def test_trace_cycles_nondecreasing(self):
        _, trace = self.run_traced(issue2())
        cycles = [c for c, _ in trace]
        assert cycles == sorted(cycles)

    def test_render_packets_shows_stalls(self):
        _, trace = self.run_traced(unlimited())
        text = render_packets(trace, limit=20)
        assert "cycle" in text
        assert "stall" in text  # the fmul waits on the load

    def test_render_pipeline_marks_latency(self):
        res, trace = self.run_traced(unlimited())
        text = render_pipeline(trace, unlimited(), n_instrs=6)
        assert "I" in text and "=" in text
        # the fmul row shows 3 cycles of execution: I==
        fmul_row = next(l for l in text.splitlines() if "r3f = r2f * r4f" in l)
        assert "I==" in fmul_row

    def test_empty_trace(self):
        assert render_pipeline([], unlimited()) == "(empty trace)"


class TestPretty:
    def test_expressions(self):
        i = var("i")
        assert expr_str(aref("A", i + 1)) == "A(i + 1)"
        assert expr_str((i + 1) * 2) == "(i + 1) * 2"
        assert expr_str(flt(i)) == "FLOAT(i)"
        assert expr_str(-i) == "-i"

    def test_kernel_rendering(self):
        i = var("i")
        k = Kernel(
            "demo",
            arrays={"A": ArrayDecl(Ty.FP, (8, 2))},
            scalars={"s": Ty.FP},
            outputs=["s"],
            body=[do("i", 1, 8, [
                if_(aref("A", i, 1) > 0.0,
                    [assign(var("s"), var("s") + aref("A", i, 1))]),
            ], kind="serial")],
        )
        text = kernel_str(k)
        assert "SUBROUTINE demo" in text
        assert "REAL A(8, 2)" in text
        assert "DO i = 1, 8  ! serial" in text
        assert "IF (A(i, 1) .GT. 0.0) THEN" in text
        assert "ENDIF" in text and "ENDDO" in text and "END" in text
        assert "! outputs: s" in text

    def test_every_corpus_kernel_renders(self):
        from repro.workloads import all_workloads

        for w in all_workloads():
            text = kernel_str(w.build())
            assert "SUBROUTINE" in text and "ENDDO" in text
