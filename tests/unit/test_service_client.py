"""Clock-correctness units: ``Retry-After`` parsing (both RFC 9110
forms) and monotonic job deadlines.

These pin the bugfix sweep's client/jobs halves: a server-suggested
backoff must be honored whether it arrives as delta-seconds or an
HTTP-date, and a job's deadline must be immune to wall-clock steps.
"""

import time

from repro.service.client import CLIENT_RETRY, ServiceClient, parse_retry_after
from repro.service.jobs import Job


class TestParseRetryAfter:
    # a fixed "now": Fri, 08 Aug 2026 12:00:00 GMT as a POSIX stamp
    NOW = 1786190400.0

    def test_delta_seconds(self):
        assert parse_retry_after("5") == 5.0
        assert parse_retry_after("0") == 0.0
        assert parse_retry_after(" 2 ") == 2.0
        assert parse_retry_after("1.5") == 1.5

    def test_negative_delta_clamps_to_zero(self):
        assert parse_retry_after("-3") == 0.0

    def test_http_date(self):
        # 30 seconds past the injected now
        assert parse_retry_after(
            "Fri, 08 Aug 2026 12:00:30 GMT", now=self.NOW) == 30.0

    def test_http_date_in_the_past_clamps_to_zero(self):
        assert parse_retry_after(
            "Fri, 08 Aug 2026 11:59:00 GMT", now=self.NOW) == 0.0

    def test_http_date_without_zone_is_utc(self):
        # RFC 5322 allows zone-less dates; they must not be read as
        # local time (a +12h zone would turn 0s of backoff into 12h)
        assert parse_retry_after(
            "Fri, 08 Aug 2026 12:00:10", now=self.NOW) == 10.0

    def test_unparseable_is_none(self):
        assert parse_retry_after(None) is None
        assert parse_retry_after("") is None
        assert parse_retry_after("soon") is None
        assert parse_retry_after("Fri, 99 Zed 2026") is None

    def test_uses_real_clock_when_now_omitted(self):
        # a date ~1h ahead of the real wall clock: the returned delay
        # must be positive and bounded, whatever "now" is during the run
        when = time.time() + 3600
        date = time.strftime("%a, %d %b %Y %H:%M:%S GMT", time.gmtime(when))
        got = parse_retry_after(date)
        assert 3590.0 <= got <= 3610.0


class TestClientHeaders:
    def test_extra_headers_are_carried(self):
        c = ServiceClient("http://127.0.0.1:1", headers={"X-Repro-Hop": "route"})
        assert c.headers == {"X-Repro-Hop": "route"}
        # the default retry policy is the shared one, unchanged
        assert c.retry is CLIENT_RETRY


class TestMonotonicDeadlines:
    def test_deadline_is_monotonic_not_wall_clock(self, monkeypatch):
        job = Job("job-000001", "run", {})
        job.deadline_mono = time.monotonic() + 5.0
        # a violent wall-clock step in either direction must not move
        # the deadline: remaining_s consults only the monotonic clock
        monkeypatch.setattr(time, "time", lambda: 0.0)
        assert 4.0 < job.remaining_s() <= 5.0
        monkeypatch.setattr(time, "time", lambda: 4e9)
        assert 4.0 < job.remaining_s() <= 5.0

    def test_no_deadline_means_unbounded(self):
        job = Job("job-000002", "run", {})
        assert job.deadline_mono is None
        assert job.remaining_s() is None

    def test_as_dict_exposes_display_times_and_elapsed(self):
        job = Job("job-000003", "run", {})
        d = job.as_dict()
        # wall-clock fields exist for humans; elapsed comes from the
        # monotonic clock and is None until the job finishes
        assert d["created"] > 0
        assert d["finished"] is None
        assert d["elapsed_s"] is None
        assert "deadline_mono" not in d  # internal, not API
