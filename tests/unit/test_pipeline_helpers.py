"""Tests for pipeline orchestration helpers: transformation levels,
prologue regions, protected registers, and figure-text generation."""

import numpy as np
import pytest

from repro.frontend import ArrayDecl, Kernel, Ty, aref, assign, do, var
from repro.harness import compile_kernel, run_compiled_kernel
from repro.machine import MachineConfig, issue8
from repro.pipeline import (
    Level,
    apply_ilp_transforms,
    prologue_regions,
    protected_registers,
)


def vadd(n=24, kind="doall"):
    i = var("i")
    return Kernel(
        "k",
        arrays={x: ArrayDecl(Ty.FP, (n,)) for x in "ABC"},
        scalars={},
        body=[do("i", 1, n, [assign(aref("C", i), aref("A", i) + aref("B", i))],
                 kind=kind)],
    )


class TestLevels:
    def test_labels(self):
        assert [l.label for l in Level] == [
            "Conv", "Lev1", "Lev2", "Lev3", "Lev4", "Lev5"
        ]

    def test_cumulative_ordering(self):
        assert (Level.CONV < Level.LEV1 < Level.LEV2 < Level.LEV3
                < Level.LEV4 < Level.LEV5)

    def test_reports_accumulate_by_level(self):
        reports = {}
        for level in Level:
            ck = compile_kernel(vadd(), level, issue8())
            reports[level] = ck.report
        assert reports[Level.CONV].unroll_factor == 1
        assert reports[Level.LEV1].unroll_factor > 1
        assert reports[Level.LEV1].renamed == 0
        assert reports[Level.LEV2].renamed > 0
        assert reports[Level.LEV4].inductions >= 1


class TestPrologueRegions:
    def test_straight_only_when_count_divides(self):
        # 24 iterations unroll 8: static preconditioning, no remainder loop
        ck = compile_kernel(vadd(24), Level.LEV2, issue8())
        regions = prologue_regions(ck.func, ck.sb)
        assert all(kind == "straight" for kind, _ in regions)

    def test_loop_region_for_remainder(self):
        # 22 iterations: a precondition loop sits between the relation-
        # establishing preheader and the unrolled body
        ck = compile_kernel(vadd(22), Level.LEV2, issue8())
        regions = prologue_regions(ck.func, ck.sb)
        kinds = [k for k, _ in regions]
        assert "loop" in kinds
        # and the loop region is not first or last (straight code surrounds it)
        assert kinds[0] == "straight"

    def test_regions_cover_dominating_instrs(self):
        ck = compile_kernel(vadd(22), Level.LEV2, issue8())
        regions = prologue_regions(ck.func, ck.sb)
        total = sum(len(instrs) for _, instrs in regions)
        assert total > 0


class TestProtectedRegisters:
    def test_live_around_values_protected(self):
        ck = compile_kernel(vadd(24), Level.LEV2, issue8())
        prot = protected_registers(ck.sb, ck.lowered.live_out_exit)
        # the loop-carried pointer(s) must be protected
        carried = {
            ins.dest for ins in ck.sb.body.instrs
            if ins.dest is not None
        } & prot
        assert carried


NESTED_PRECONDITION = """
function t:
entry:
  r1i = 0
POUT:
  r2i = 0
PIN:
  r2i = r2i + 1
  blt (r2i r9i) PIN
PTAIL:
  r1i = r1i + 1
  blt (r1i r9i) POUT
mid:
  r3i = 0
LOOP:
  r3i = r3i + 1
  blt (r3i r9i) LOOP
exitb:
  halt
"""

SIDE_EXIT = """
function t:
pre:
  r1i = 0
LOOP:
  r2i = r1i + 1
  blt (r2i r9i) SIDE
  r1i = r2i + 0
  blt (r1i r9i) LOOP
exitb:
  halt
SIDE:
  r5i = 1
  r6i = r5i + 1
  halt
"""


def _superblock_over(func, header, preheader=None, exit_block=None):
    """A hand-built SuperblockLoop wrapper for edge-case CFGs."""
    from repro.ir import Block
    from repro.schedule.superblock import SuperblockLoop

    bm = func.block_map()
    return SuperblockLoop(
        func=func,
        body=bm[header],
        preheader=bm[preheader] if preheader else Block("pre"),
        counted=None,
        exit_block=bm[exit_block] if exit_block else None,
    )


class TestPrologueRegionEdgeCases:
    def test_header_first_layout_has_no_regions(self):
        # a loop whose header is the entry block: nothing dominates it
        # in layout, so the prologue is empty (not an error)
        from repro.ir import parse_function

        f = parse_function(
            "function t:\nLOOP:\n  r1i = r1i + 1\n  blt (r1i r9i) LOOP\n"
            "exitb:\n  halt\n"
        )
        sb = _superblock_over(f, "LOOP")
        assert prologue_regions(f, sb) == []

    def test_nested_precondition_loops_keyed_by_innermost_header(self):
        # entry -> outer precondition loop (with a nested inner loop)
        # -> mid -> LOOP.  The inner loop's block must form its own
        # "loop" region (keyed by the innermost header), not be merged
        # with the surrounding outer-loop regions.
        from repro.ir import parse_function

        f = parse_function(NESTED_PRECONDITION)
        sb = _superblock_over(f, "LOOP", exit_block="exitb")
        regions = prologue_regions(f, sb)
        kinds = [k for k, _ in regions]
        # POUT / PIN / PTAIL are three distinct loop regions: PIN's key
        # (the innermost header) differs from POUT's, so no merging
        assert kinds == ["straight", "loop", "loop", "loop", "straight"]
        # every dominating instruction before the header is covered
        assert sum(len(instrs) for _, instrs in regions) == 7

    def test_side_exit_target_with_empty_live_in(self):
        # the side-exit target defines everything it uses, so it
        # contributes nothing to the protected set — only values live
        # around the backedge / at the natural exit are protected
        from repro.ir import parse_function

        f = parse_function(SIDE_EXIT)
        sb = _superblock_over(f, "LOOP", preheader="pre", exit_block="exitb")
        assert sb.side_exit_positions() == [1]
        prot = {str(r) for r in protected_registers(sb, set())}
        assert "r1i" in prot          # live around the backedge
        assert "r9i" in prot          # branch bound, live at the header
        assert "r5i" not in prot      # local to the side-exit target
        assert "r6i" not in prot
        assert "r2i" not in prot      # defined before use in the body


class TestFigureTexts:
    def test_all_artifacts_present(self):
        from repro.experiments.run_all import figure_texts
        from repro.experiments.sweep import load_sweep

        data = load_sweep()
        if data is None:
            pytest.skip("no cached sweep (run python -m repro.experiments.run_all)")
        texts = figure_texts(data)
        expected = {
            "table1_latencies", "table2_corpus",
            "fig08_speedup_issue2", "fig09_speedup_issue4",
            "fig10_speedup_issue8", "fig11_regusage_issue8",
            "fig12_speedup_doall", "fig13_regusage_doall",
            "fig14_speedup_nondoall", "fig15_regusage_nondoall",
            "headline_claims",
        }
        assert expected <= set(texts)
        for text in texts.values():
            assert text.strip()


class TestUnrollFactorOverride:
    @pytest.mark.parametrize("factor", [2, 5, 7])
    def test_explicit_factor_respected_and_correct(self, factor):
        rng = np.random.default_rng(3)
        n = 23
        A = rng.integers(1, 9, n).astype(float)
        B = rng.integers(1, 9, n).astype(float)
        ck = compile_kernel(vadd(n), Level.LEV2, issue8(), unroll_factor=factor)
        assert ck.report.unroll_factor == factor
        out = run_compiled_kernel(ck, arrays={"A": A, "B": B, "C": np.zeros(n)})
        assert np.array_equal(out.arrays["C"], A + B)
