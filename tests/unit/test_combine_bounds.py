"""Directed tests for operation combining's boundary behavior.

Two audited properties:

* the overflow guard (paper footnote 1) admits the *full* asymmetric
  signed 32-bit range — ``-2**31`` is a representable immediate and must
  combine, while ``-2**31 - 1`` and ``2**31`` must not;
* the Figure-6 exchange never hoists a branch above the definition of a
  register that is live at the branch's target (``protected``).
"""

from repro.ir import int_reg, parse_block
from repro.transforms.combine import INT32_MAX, INT32_MIN, combine_operations


def combine(text: str, protected=frozenset()):
    body = parse_block(text).instrs
    n = combine_operations(body, protected)
    return n, body


class TestInt32Bounds:
    def test_add_hits_int32_min_exactly(self):
        # -2**31 is representable: the guard must not reject it
        n, body = combine(f"r1i = r2i + {INT32_MIN + 5}\nr3i = r1i - 5\n")
        assert n == 1
        assert str(body[1]) == f"r3i = r2i + {INT32_MIN}"

    def test_add_below_int32_min_rejected(self):
        n, _ = combine(f"r1i = r2i + {INT32_MIN + 5}\nr3i = r1i - 6\n")
        assert n == 0

    def test_add_hits_int32_max_exactly(self):
        n, body = combine(f"r1i = r2i + {INT32_MAX - 5}\nr3i = r1i + 5\n")
        assert n == 1
        assert str(body[1]) == f"r3i = r2i + {INT32_MAX}"

    def test_add_above_int32_max_rejected(self):
        n, _ = combine(f"r1i = r2i + {INT32_MAX - 5}\nr3i = r1i + 6\n")
        assert n == 0

    def test_mul_hits_int32_min_exactly(self):
        n, body = combine(f"r1i = r2i * {1 << 30}\nr3i = r1i * -2\n")
        assert n == 1
        assert str(body[1]) == f"r3i = r2i * {INT32_MIN}"

    def test_mul_overflow_rejected(self):
        assert combine(f"r1i = r2i * {1 << 30}\nr3i = r1i * 2\n")[0] == 0
        assert combine(f"r1i = r2i * {1 << 30}\nr3i = r1i * -3\n")[0] == 0

    def test_branch_constant_at_bounds(self):
        # branch folding computes C2 - delta: exercise both edges
        n, body = combine(f"r1i = r2i + 5\nblt (r1i {INT32_MIN + 5}) L\n")
        assert n == 1
        assert str(body[1]) == f"blt (r2i {INT32_MIN}) L"
        assert combine(f"r1i = r2i + 6\nblt (r1i {INT32_MIN + 5}) L\n")[0] == 0
        n, body = combine(f"r1i = r2i - 5\nblt (r1i {INT32_MAX - 5}) L\n")
        assert n == 1
        assert str(body[1]) == f"blt (r2i {INT32_MAX}) L"
        assert combine(f"r1i = r2i - 6\nblt (r1i {INT32_MAX - 5}) L\n")[0] == 0

    def test_load_offset_at_bounds(self):
        n, body = combine(
            f"r1i = r2i + {INT32_MIN + 16}\nr3f = MEM(r1i-16)\n"
        )
        assert n == 1
        assert str(body[1]) == f"r3f = MEM(r2i{INT32_MIN})"
        assert combine(
            f"r1i = r2i + {INT32_MIN + 16}\nr3f = MEM(r1i-17)\n"
        )[0] == 0


class TestFigure6Exchange:
    def test_branch_exchange_over_dead_definition(self):
        # r1 not live at the side-exit target: exchange is legal, and the
        # branch ends up above the increment reading the pre-update value
        n, body = combine("r1i = r1i + 4\nbge (r1i 100) X\n")
        assert n == 1
        assert body[0].is_branch and str(body[0]) == "bge (r1i 96) X"
        assert str(body[1]) == "r1i = r1i + 4"

    def test_branch_not_exchanged_over_live_definition(self):
        # r1 IS live at the branch target: hoisting the branch above the
        # increment would let the exit path observe the stale value
        n, body = combine("r1i = r1i + 4\nbge (r1i 100) X\n",
                          protected={int_reg(1)})
        assert n == 0
        assert str(body[0]) == "r1i = r1i + 4"  # order untouched

    def test_non_branch_exchange_unaffected_by_protected(self):
        # protected only constrains control transfers: a load may still
        # exchange (it stays on the fall-through path, every successor
        # sees the increment's result afterwards)
        n, body = combine("r1i = r1i + 4\nr2f = MEM(r1i+8)\n",
                          protected={int_reg(1)})
        assert n == 1
        assert body[0].is_load and str(body[0]) == "r2f = MEM(r1i+12)"
        assert str(body[1]) == "r1i = r1i + 4"

    def test_non_adjacent_self_update_not_exchanged(self):
        n, body = combine(
            "r1i = r1i + 4\nr9f = r8f * r8f\nbge (r1i 100) X\n"
        )
        assert n == 0
        assert str(body[2]) == "bge (r1i 100) X"
