"""Tests for the differential correctness oracle (repro.check).

Three layers, mirroring the module structure:

* ``refeval`` — the boring sequential IR interpreter (control flow, strict
  uninitialized-read errors, store logging);
* ``oracle`` — golden-state comparison, tolerance policy, and
  first-divergent-store provenance;
* ``fuzz`` — the AST interpreter, spec determinism, and greedy shrinking.
"""

import dataclasses

import numpy as np
import pytest

import importlib

fuzz_mod = importlib.import_module("repro.check.fuzz")

from repro.check.fuzz import (
    CaseSpec,
    build_kernel,
    build_workload,
    _case_data,
    fuzz,
    interpret_kernel,
    random_spec,
    shrink_kernel,
)
from repro.check.oracle import (
    Divergence,
    OracleReport,
    _diff_states,
    check_workload,
    run_oracle,
)
from repro.check.refeval import RefEvalError, ref_eval, reference_run
from repro.ir import parse_function
from repro.pipeline import ALL_LEVELS, Level
from repro.sim.executor import _idiv, _irem
from repro.workloads import get_workload


class TestRefEval:
    def test_straight_line(self):
        f = parse_function(
            """
            entry:
              r1i = r2i + 5
              r3i = r1i * r1i
              halt
            """
        )
        res = ref_eval(f, iregs={2: 7})
        assert res.iregs[3] == 144
        assert res.steps == 3

    def test_loop_follows_branches(self):
        # sum 1..5 through an explicit backedge
        f = parse_function(
            """
            entry:
              r1i = 1
              r2i = 0
            loop:
              r2i = r2i + r1i
              r1i = r1i + 1
              ble (r1i 5) loop
            done:
              halt
            """
        )
        res = ref_eval(f)
        assert res.iregs[2] == 15

    def test_uninitialized_register_read_raises(self):
        f = parse_function("entry:\n  r1i = r9i + 1\n  halt\n")
        with pytest.raises(RefEvalError, match="uninitialized register"):
            ref_eval(f)

    def test_uninitialized_load_raises(self):
        f = parse_function("entry:\n  r1f = MEM(r2i+0)\n  halt\n")
        with pytest.raises(RefEvalError, match="uninitialized address"):
            ref_eval(f, iregs={2: 64})

    def test_division_by_zero_raises(self):
        f = parse_function("entry:\n  r1i = r2i / r3i\n  halt\n")
        with pytest.raises(RefEvalError, match="division by zero"):
            ref_eval(f, iregs={2: 4, 3: 0})

    def test_store_log_records_address_and_value(self):
        f = parse_function(
            """
            entry:
              MEM(r1i+4) = r2f
              MEM(r1i+4) = r3f
              halt
            """
        )
        res = ref_eval(f, iregs={1: 96}, fregs={2: 1.5, 3: 2.5},
                       log_stores=True)
        assert [(ev.addr, ev.value) for ev in res.stores] == [
            (100, 1.5), (100, 2.5)
        ]
        assert res.memory._words[100 >> 2] == 2.5

    def test_golden_run_matches_workload_reference(self):
        # the naive-lowered golden state agrees with the NumPy reference
        w = get_workload("dotprod")
        arrays, scalars = w.make_inputs(0)
        got_arrays, got_scalars, res = reference_run(
            w.build(), arrays, scalars, log_stores=True
        )
        want_arrays, want_scalars = w.reference(arrays, scalars)
        for name, want in want_arrays.items():
            np.testing.assert_allclose(got_arrays[name], want, rtol=w.rtol)
        for name, want in want_scalars.items():
            assert np.isclose(got_scalars[name], want, rtol=w.rtol)


class TestOracle:
    def test_clean_workloads_have_no_divergences(self):
        for name in ("add", "dotprod", "merge"):
            checked, divs = check_workload(get_workload(name))
            assert checked == len(ALL_LEVELS) * 2  # widths (1, 8)
            assert divs == []

    def test_report_summary(self):
        r = OracleReport(configs_checked=10, kernels_checked=2, elapsed=1.0)
        assert r.ok and "OK" in r.summary()
        r.divergences.append(Divergence("w", "Lev4", 8, "array", "boom"))
        assert not r.ok and "1 DIVERGENCES" in r.summary()
        assert str(r.divergences[0]) == "w Lev4 issue-8 [array]: boom"

    def test_run_oracle_subset(self):
        report = run_oracle([get_workload("sum")], widths=(4,))
        assert report.ok
        assert report.kernels_checked == 1
        assert report.configs_checked == len(ALL_LEVELS)

    def test_diff_states_provenance_names_last_store(self):
        # perturb one golden element and check the report carries the
        # address and the store that produced the golden value
        w = get_workload("add")
        arrays, scalars = w.make_inputs(0)
        golden_arrays, golden_scalars, res = reference_run(
            w.build(), arrays, scalars, log_stores=True
        )
        stored = {ev.addr for ev in res.stores}
        name = next(n for n in golden_arrays
                    if res.memory.array_base(n) + 4 * 3 in stored)
        bad_arrays = {k: v.copy() for k, v in golden_arrays.items()}
        bad_arrays[name].flat[3] += 1.0
        msg = _diff_states(w, bad_arrays, golden_scalars,
                           golden_arrays, golden_scalars, exact=True,
                           golden_res=res)
        assert msg is not None and f"array {name}[flat 3]" in msg
        addr = res.memory.array_base(name) + 4 * 3
        assert f"addr {addr:#x}" in msg
        assert "golden last store" in msg and "step" in msg

    def test_diff_states_tolerance_policy(self):
        w = get_workload("add")
        a = {"A": np.array([1.0, 2.0, 3.0])}
        b = {"A": np.array([1.0, 2.0, 3.0 + 1e-12])}
        assert _diff_states(w, a, {}, b, {}, exact=True) is not None
        assert _diff_states(w, a, {}, b, {}, exact=False) is None

    def test_diff_states_scalar(self):
        w = get_workload("sum")
        msg = _diff_states(w, {}, {"s": 2.0}, {}, {"s": 3.0}, exact=True)
        assert msg == "scalar s diverges: got 2.0 want 3.0"


SPECS = [
    CaseSpec(seed=1, trip=7, outer=0, stmts=("axpy",), symbolic_bound=False,
             consts=(2, -1, 3, 5, 4)),
    CaseSpec(seed=2, trip=12, outer=2, stmts=("imath", "dot"),
             symbolic_bound=True, consts=(-3, 2, 4, 7, -5)),
    CaseSpec(seed=3, trip=9, outer=0, stmts=("guard", "amax"),
             symbolic_bound=False, consts=(0, 1, 2, 3, 0)),
]


class TestFuzz:
    def test_interpreter_truncating_division(self):
        # imath exercises div/rem over negative dividends: the AST
        # interpreter must share the executor's toward-zero semantics
        spec = SPECS[1]
        arrays, scalars = _case_data(spec)
        arrs, _ = interpret_kernel(build_kernel(spec), arrays, scalars)
        c = spec.consts
        ji = arrays["JI"]
        want_ki = np.array(
            [_idiv(int(v) * c[0] + c[1], c[2]) for v in ji]
        )
        np.testing.assert_array_equal(arrs["KI"], want_ki)
        want_li = np.array(
            [_irem(int(v), c[3]) + int(k) * c[4]
             for v, k in zip(ji, want_ki)]
        )
        np.testing.assert_array_equal(arrs["LI"], want_li)

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: f"seed{s.seed}")
    def test_interpreter_agrees_with_lowered_golden(self, spec):
        # two independent references — AST walking vs naive-lowered IR
        # evaluation — must agree bit-identically on exact-fp data
        arrays, scalars = _case_data(spec)
        ast_arrays, ast_scalars = interpret_kernel(
            build_kernel(spec), arrays, scalars
        )
        ir_arrays, ir_scalars, _ = reference_run(
            build_kernel(spec), arrays, scalars
        )
        for name in ast_arrays:
            np.testing.assert_array_equal(
                ast_arrays[name].reshape(-1, order="F"),
                np.asarray(ir_arrays[name]).reshape(-1, order="F"),
            )
        assert ast_scalars == ir_scalars

    def test_spec_is_deterministic(self):
        assert random_spec(42) == random_spec(42)
        w1, w2 = build_workload(SPECS[0]), build_workload(SPECS[0])
        a1, s1 = w1.make_inputs(0)
        a2, s2 = w2.make_inputs(0)
        assert s1 == s2
        for name in a1:
            np.testing.assert_array_equal(a1[name], a2[name])

    def test_serial_template_forces_serial_loop(self):
        assert build_kernel(SPECS[0]).inner_do().kind == "doall"
        assert build_kernel(SPECS[1]).inner_do().kind == "serial"
        assert "n" in build_kernel(SPECS[1]).scalars  # symbolic bound

    def test_fuzz_case_through_oracle(self):
        checked, divs = check_workload(build_workload(SPECS[1]))
        assert checked == len(ALL_LEVELS) * 2
        assert divs == []

    def test_fuzz_driver_clean(self):
        assert fuzz(n_cases=3, seed=0) == []

    def test_shrinker_minimizes_failing_spec(self, monkeypatch):
        # fake oracle: "fails" iff the spec still contains the dot
        # template — the shrinker must strip everything else away
        def fake_check(spec, levels, widths, check_ir):
            if "dot" in spec.stmts:
                return [Divergence(f"fuzz{spec.seed}", "Lev4", 8,
                                   "scalar", "injected")]
            return []

        monkeypatch.setattr(fuzz_mod, "_check_spec", fake_check)
        big = CaseSpec(seed=9, trip=24, outer=3,
                       stmts=("axpy", "dot", "guard"), symbolic_bound=True,
                       consts=(1, 2, 3, 4, 5))
        small, divs = shrink_kernel(big)
        assert small.stmts == ("dot",)
        assert small.trip == 1
        assert small.outer == 0
        assert not small.symbolic_bound
        assert divs and divs[0].detail == "injected"

    def test_shrunk_spec_rebuilds_identically(self):
        spec = dataclasses.replace(SPECS[2], trip=4)
        k1, k2 = build_kernel(spec), build_kernel(spec)
        assert repr(k1.body) == repr(k2.body)
