"""Unit tests for the machine model and machine-description files."""

import json

import pytest

from repro.ir.instructions import Kind, Op
from repro.machine import (
    MachineConfig,
    PAPER_LATENCIES,
    from_description,
    issue1,
    issue2,
    issue4,
    issue8,
    load_description,
    to_description,
    unlimited,
)


class TestLatencies:
    def test_table1_values(self):
        m = issue8()
        assert m.latency(Op.ADD) == 1
        assert m.latency(Op.MUL) == 3
        assert m.latency(Op.DIV) == 10
        assert m.latency(Op.REM) == 10
        assert m.latency(Op.FADD) == 3
        assert m.latency(Op.ITOF) == 3
        assert m.latency(Op.FMUL) == 3
        assert m.latency(Op.FDIV) == 10
        assert m.latency(Op.LD) == 2
        assert m.latency(Op.ST) == 1
        assert m.latency(Op.BLT) == 1

    def test_moves_are_single_cycle(self):
        m = issue8()
        assert m.latency(Op.MOV) == 1
        assert m.latency(Op.FMOV) == 1

    def test_presets(self):
        assert issue1().issue_width == 1
        assert issue2().issue_width == 2
        assert issue4().issue_width == 4
        assert issue8().issue_width == 8
        assert unlimited().unlimited

    def test_with_width(self):
        m = issue8().with_width(2)
        assert m.issue_width == 2
        assert m.latency(Op.FDIV) == 10


class TestDescriptions:
    def test_round_trip(self):
        m = MachineConfig(issue_width=4, branch_slots=2,
                          slot_limits={Kind.FP_MUL: 1},
                          speculative_loads=False)
        back = from_description(to_description(m))
        assert back.issue_width == 4
        assert back.branch_slots == 2
        assert back.slot_limits == {Kind.FP_MUL: 1}
        assert not back.speculative_loads
        assert back.latencies == m.latencies

    def test_partial_description_defaults_to_table1(self):
        m = from_description({"issue_width": 2, "latencies": {"FP_DIV": 20}})
        assert m.latency(Op.FDIV) == 20
        assert m.latency(Op.FADD) == PAPER_LATENCIES[Kind.FP_ALU]

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            from_description({"latencies": {"WARP_DRIVE": 1}})

    def test_load_from_file(self, tmp_path):
        p = tmp_path / "slow_divide.json"
        p.write_text(json.dumps({
            "issue_width": 4,
            "latencies": {"INT_DIV": 40, "FP_DIV": 40},
        }))
        m = load_description(p)
        assert m.latency(Op.DIV) == 40
        assert m.issue_width == 4

    def test_custom_machine_changes_timing(self):
        """A slower divide must slow a divide-bound loop: the description
        actually parameterizes code generation + simulation."""
        import numpy as np
        from repro.ir import parse_function
        from repro.sim import Memory, simulate

        f_text = """
function t:
entry:
  r1i = 0
L:
  r2f = MEM(A+r1i)
  r3f = r2f / r4f
  MEM(B+r1i) = r3f
  r1i = r1i + 4
  blt (r1i 64) L
exit:
  halt
"""
        cycles = {}
        for name, desc in (("fast", {}), ("slow", {"latencies": {"FP_DIV": 30}})):
            f = parse_function(f_text)
            mem = Memory()
            mem.bind_array("A", np.ones(16) * 8.0)
            mem.bind_array("B", np.zeros(16))
            m = from_description({"issue_width": 8, **desc})
            cycles[name] = simulate(f, m, mem, fregs={4: 2.0}).cycles
        assert cycles["slow"] > cycles["fast"] + 16 * 10
